"""Software formal verification baseline (p4v-like).

Verifies properties of a P4 program **at the specification level**: it
explores the program's parser and table structure symbolically (value-set
domain, :mod:`repro.baselines.symbolic`), derives one concrete *witness
candidate* per behaviour class (parser path × table-entry choice), and
checks every property on the spec-faithful reference interpreter for each
candidate. Violations always carry a concrete counterexample packet.

Like the tool it models, the verifier's soundness boundary is the
specification itself: it never executes the *compiled target*, so a
backend that deviates from the spec — SDNet's unimplemented ``reject``
state — is invisible here. The paper's §4 case study hinges on exactly
this blind spot, and the comparison experiments use
:attr:`VerificationReport.analysis_level` to make it explicit.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import P4RuntimeError, VerificationError
from ..p4.expr import Const, Expr, FieldRef, MetaRef
from ..p4.interpreter import Interpreter, PipelineResult, Verdict
from ..p4.parser import ACCEPT, REJECT
from ..p4.program import P4Program
from ..p4.table import KeyPattern, MatchKind, Table, TableEntry
from ..packet.packet import Header, Packet
from .symbolic import Infeasible, SymbolicState, ValueSet

__all__ = [
    "Property",
    "Violation",
    "VerificationReport",
    "SymbolicVerifier",
    "prop_no_invalid_header_access",
    "prop_forwarded",
    "prop_rejected_never_forwarded",
    "equivalence_check",
]

#: Cap on parser paths and per-program candidates, to bound verification.
MAX_PARSER_PATHS = 256
MAX_CANDIDATES = 4096


@dataclass(frozen=True)
class Property:
    """A property checked on every candidate behaviour.

    ``check(wire, result)`` returns True when the behaviour satisfies the
    property. ``result`` is the spec-level pipeline result for ``wire``.
    """

    name: str
    check: Callable[[bytes, PipelineResult], bool]
    description: str = ""


@dataclass(frozen=True)
class Violation:
    """A property violation with a concrete witness packet."""

    property_name: str
    witness: bytes
    detail: str


@dataclass
class VerificationReport:
    """Everything one verification run produced."""

    program: str
    properties: list[str]
    violations: list[Violation] = field(default_factory=list)
    parser_paths: int = 0
    candidates: int = 0
    #: Constant reminder of what this tool can see. Always ``"spec"``:
    #: the verifier analyses the program, never the compiled artifact.
    analysis_level: str = "spec"

    @property
    def passed(self) -> bool:
        return not self.violations

    def violations_of(self, property_name: str) -> list[Violation]:
        return [
            v for v in self.violations if v.property_name == property_name
        ]

    def summary(self) -> str:
        lines = [
            f"formal verification of {self.program!r} "
            f"[{self.analysis_level}-level]",
            f"  parser paths: {self.parser_paths}, candidates: "
            f"{self.candidates}",
            f"  verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        for violation in self.violations:
            lines.append(
                f"  violated {violation.property_name!r}: {violation.detail}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Property constructors
# ----------------------------------------------------------------------
def prop_no_invalid_header_access() -> Property:
    """The classic p4v property: no read/write of an invalid header.

    Violations surface as interpreter runtime errors; the verifier turns
    those into violations of this property automatically, so the check
    function itself always passes.
    """
    return Property(
        "no-invalid-header-access",
        lambda wire, result: True,
        "no path reads or writes a header that was not extracted",
    )


def prop_forwarded(
    name: str,
    predicate: Callable[[PipelineResult], bool],
    description: str = "",
) -> Property:
    """Forwarded packets must satisfy ``predicate`` on the final state."""

    def check(wire: bytes, result: PipelineResult) -> bool:
        if result.verdict is not Verdict.FORWARDED:
            return True
        return predicate(result)

    return Property(name, check, description)


def prop_rejected_never_forwarded() -> Property:
    """Parser-rejectable inputs never leave the device.

    On the specification this is true *by construction* — the spec
    semantics drop rejected packets — which is precisely why a formal
    tool passes programs whose hardware violates it.
    """

    def check(wire: bytes, result: PipelineResult) -> bool:
        return result.verdict is not Verdict.FORWARDED or (
            result.metadata.get("parser_error", 0) == 0
        )

    return Property(
        "rejected-never-forwarded",
        check,
        "packets that reach the reject state are dropped",
    )


# ----------------------------------------------------------------------
# Parser path enumeration
# ----------------------------------------------------------------------
@dataclass
class ParserPath:
    """One path through the parser FSM."""

    states: list[str]
    extracted: list[str]
    sym: SymbolicState
    outcome: str  # ACCEPT or REJECT


class SymbolicVerifier:
    """Spec-level property verifier for one program."""

    def __init__(self, program: P4Program, seed: int = 0):
        self.program = program
        self._rng = random.Random(seed)

    # -- parser -----------------------------------------------------------
    def parser_paths(self) -> list[ParserPath]:
        """All bounded paths through the parser with their constraints."""
        env = self.program.env
        paths: list[ParserPath] = []
        start = self.program.parser.start

        def walk(
            state_name: str,
            visited: tuple[str, ...],
            extracted: list[str],
            sym: SymbolicState,
        ) -> None:
            if len(paths) >= MAX_PARSER_PATHS:
                return
            if state_name in (ACCEPT, REJECT):
                paths.append(
                    ParserPath(
                        list(visited), list(extracted), sym, state_name
                    )
                )
                return
            if visited.count(state_name) > 1:
                return  # refuse cyclic paths beyond one revisit
            state = self.program.parser.state(state_name)
            new_extracted = extracted + list(state.extracts)
            for header in state.extracts:
                sym.extracted.append(header)

            if state.verify is not None:
                # Branch: verify fails -> reject. Constrain only the
                # common "field op const" shapes; otherwise fork blindly.
                fail_sym = sym.fork()
                fail_sym.note(f"verify fails in {state_name}")
                try:
                    self._constrain_bool(fail_sym, state.verify[0], False)
                    paths.append(
                        ParserPath(
                            list(visited) + [state_name],
                            list(new_extracted),
                            fail_sym,
                            REJECT,
                        )
                    )
                except Infeasible:
                    pass
                try:
                    self._constrain_bool(sym, state.verify[0], True)
                except Infeasible:
                    return

            transition = state.transition
            if not transition.is_select:
                walk(
                    transition.default,
                    visited + (state_name,),
                    new_extracted,
                    sym,
                )
                return
            # Select: branch per case plus the default.
            taken_values: list[int] = []
            single_exact_key = (
                len(transition.keys) == 1
                and isinstance(transition.keys[0], (FieldRef, MetaRef))
            )
            key_path = (
                self._expr_path(transition.keys[0])
                if single_exact_key
                else None
            )
            key_width = (
                transition.keys[0].width(env) if single_exact_key else 0
            )
            for case in transition.cases:
                branch = sym.fork()
                feasible = True
                if single_exact_key and len(case.patterns) == 1:
                    value, mask_ = case.patterns[0]
                    if mask_ == -1:
                        try:
                            branch.constrain_eq(key_path, key_width, value)
                            taken_values.append(value)
                        except Infeasible:
                            feasible = False
                    else:
                        branch.note(
                            f"masked select {value:#x}/{mask_:#x}"
                        )
                if feasible:
                    walk(
                        case.next_state,
                        visited + (state_name,),
                        new_extracted,
                        branch,
                    )
            default_branch = sym.fork()
            feasible = True
            if single_exact_key:
                for value in taken_values:
                    try:
                        default_branch.constrain_ne(
                            key_path, key_width, value
                        )
                    except Infeasible:
                        feasible = False
                        break
            if feasible:
                walk(
                    transition.default,
                    visited + (state_name,),
                    new_extracted,
                    default_branch,
                )

        walk(start, (), [], SymbolicState())
        return paths

    def _expr_path(self, expr: Expr) -> str:
        if isinstance(expr, FieldRef):
            return expr.path
        if isinstance(expr, MetaRef):
            return f"meta.{expr.name}"
        raise VerificationError(f"not a simple reference: {expr!r}")

    def _constrain_bool(
        self, sym: SymbolicState, expr: Expr, want: bool
    ) -> None:
        """Best-effort refinement of ``expr == want`` on the state.

        Handles ``field == const`` / ``field >= const`` (and conjunctions
        when asserting True). Anything else becomes a note — the
        candidate is over-approximate and the concrete replay decides.
        """
        from ..p4.expr import BinOp

        env = self.program.env
        if isinstance(expr, BinOp):
            if expr.op == "and" and want:
                self._constrain_bool(sym, expr.left, True)
                self._constrain_bool(sym, expr.right, True)
                return
            if expr.op == "and" and not want:
                # ¬(a ∧ b) — cover the ¬a disjunct; the concrete replay
                # keeps this sound (never a false violation).
                self._constrain_bool(sym, expr.left, False)
                return
            simple_ref = isinstance(expr.left, (FieldRef, MetaRef))
            const_right = isinstance(expr.right, Const)
            if simple_ref and const_right:
                path = self._expr_path(expr.left)
                width = expr.left.width(env)
                value = expr.right.value
                if expr.op == "==":
                    if want:
                        sym.constrain_eq(path, width, value)
                    else:
                        sym.constrain_ne(path, width, value)
                    return
                if expr.op == ">=" and not want:
                    # field < value: representable when small.
                    if value <= 64:
                        allowed = frozenset(range(value))
                        sym.set(
                            path,
                            sym.get(path, width).refine_in(allowed),
                        )
                        return
                if expr.op == ">=" and want:
                    sym.note(f"{path} >= {value}")
                    # Prefer a witness at the boundary.
                    current = sym.get(path, width)
                    if current.kind == "any":
                        sym.set(path, ValueSet.concrete(width, value))
                    return
        sym.note(f"unrefined constraint: {expr!r} == {want}")

    # -- candidate construction --------------------------------------------
    def build_packet(self, path: ParserPath, sym: SymbolicState) -> bytes:
        """Materialize a concrete packet following ``path``."""
        headers: list[Header] = []
        for name in path.extracted:
            spec = self.program.env.header(name)
            values = {}
            for fspec in spec.fields:
                dotted = f"{name}.{fspec.name}"
                if dotted in sym.fields:
                    values[fspec.name] = sym.fields[dotted].pick(
                        fspec.default
                    )
                else:
                    values[fspec.name] = fspec.default
            headers.append(Header(spec, values))
        packet = Packet(headers=headers, payload=b"\x00" * 16)
        return packet.pack()

    def _table_choices(self, table: Table) -> list[TableEntry | None]:
        """Branches per table: each installed entry plus the miss."""
        return list(table.entries) + [None]

    def _constrain_for_entry(
        self,
        sym: SymbolicState,
        table: Table,
        entry: TableEntry | None,
        misses: list[TableEntry],
    ) -> bool:
        """Refine ``sym`` so the table chooses ``entry`` (None=miss)."""
        env = self.program.env
        try:
            if entry is not None:
                for key, pattern in zip(table.keys, entry.patterns):
                    if not isinstance(key.expr, (FieldRef, MetaRef)):
                        continue
                    path = self._expr_path(key.expr)
                    width = key.expr.width(env)
                    value = self._pattern_value(key.kind, pattern, width)
                    if isinstance(key.expr, FieldRef):
                        sym.constrain_eq(path, width, value)
            else:
                for miss_entry in misses:
                    for key, pattern in zip(table.keys, miss_entry.patterns):
                        if key.kind is not MatchKind.EXACT:
                            continue
                        if not isinstance(key.expr, FieldRef):
                            continue
                        sym.constrain_ne(
                            self._expr_path(key.expr),
                            key.expr.width(env),
                            pattern.value,
                        )
        except Infeasible:
            return False
        return True

    @staticmethod
    def _pattern_value(
        kind: MatchKind, pattern: KeyPattern, width: int
    ) -> int:
        if kind is MatchKind.EXACT:
            return pattern.value
        if kind is MatchKind.LPM:
            return pattern.value  # the prefix's own address matches
        if kind is MatchKind.TERNARY:
            return pattern.value & (pattern.mask or 0)
        if kind is MatchKind.RANGE:
            return pattern.value
        raise VerificationError(f"unknown kind {kind!r}")

    def candidates(self) -> list[bytes]:
        """Concrete witness packets covering behaviour classes."""
        tables = list(self.program.all_tables().values())
        packets: list[bytes] = []
        for path in self.parser_paths():
            if path.outcome == REJECT:
                try:
                    packets.append(self.build_packet(path, path.sym))
                except Infeasible:
                    pass
                continue
            choice_lists = [self._table_choices(t) for t in tables]
            if not choice_lists:
                try:
                    packets.append(self.build_packet(path, path.sym))
                except Infeasible:
                    pass
                continue
            for combo in itertools.product(*choice_lists):
                if len(packets) >= MAX_CANDIDATES:
                    break
                sym = path.sym.fork()
                feasible = True
                for table, entry in zip(tables, combo):
                    if not self._constrain_for_entry(
                        sym, table, entry, table.entries
                    ):
                        feasible = False
                        break
                if not feasible:
                    continue
                try:
                    packets.append(self.build_packet(path, sym))
                except Infeasible:
                    continue
        # Deduplicate while preserving order.
        seen: set[bytes] = set()
        unique = []
        for packet in packets:
            if packet not in seen:
                seen.add(packet)
                unique.append(packet)
        return unique

    # -- main entry ----------------------------------------------------------
    def verify(self, properties: list[Property]) -> VerificationReport:
        """Check every property against every candidate behaviour."""
        report = VerificationReport(
            program=self.program.name,
            properties=[p.name for p in properties],
        )
        paths = self.parser_paths()
        report.parser_paths = len(paths)
        candidates = self.candidates()
        report.candidates = len(candidates)

        has_header_access_prop = any(
            p.name == "no-invalid-header-access" for p in properties
        )
        for wire in candidates:
            interp = Interpreter(self.program, honor_reject=True)
            try:
                result = interp.process(wire)
            except P4RuntimeError as exc:
                if has_header_access_prop:
                    report.violations.append(
                        Violation(
                            "no-invalid-header-access", wire, str(exc)
                        )
                    )
                continue
            for prop in properties:
                if prop.name == "no-invalid-header-access":
                    continue
                if not prop.check(wire, result):
                    report.violations.append(
                        Violation(
                            prop.name,
                            wire,
                            f"verdict={result.verdict.value} "
                            f"egress={result.metadata.get('egress_spec')}",
                        )
                    )
        return report


def equivalence_check(
    program_a: P4Program, program_b: P4Program, seed: int = 0
) -> list[tuple[bytes, str]]:
    """Spec-level differential check of two programs.

    Runs both specifications on the union of both candidate sets and
    returns ``(witness, explanation)`` for every behavioural difference.
    This is the formal tool's contribution to the *comparison* use case —
    note it compares specifications, not implementations.
    """
    candidates = (
        SymbolicVerifier(program_a, seed).candidates()
        + SymbolicVerifier(program_b, seed).candidates()
    )
    differences: list[tuple[bytes, str]] = []
    seen: set[bytes] = set()
    for wire in candidates:
        if wire in seen:
            continue
        seen.add(wire)
        results = []
        for program in (program_a, program_b):
            interp = Interpreter(program, honor_reject=True)
            try:
                result = interp.process(wire)
                results.append(
                    (
                        result.verdict.value,
                        result.metadata.get("egress_spec"),
                        result.packet.pack() if result.packet else b"",
                    )
                )
            except P4RuntimeError as exc:
                results.append(("runtime-error", None, str(exc).encode()))
        if results[0] != results[1]:
            differences.append(
                (
                    wire,
                    f"{program_a.name}: {results[0][0]} -> port "
                    f"{results[0][1]}; {program_b.name}: {results[1][0]} "
                    f"-> port {results[1][1]}",
                )
            )
    return differences
