"""Software formal verification baseline (p4v-like).

Verifies properties of a P4 program **at the specification level**: it
explores the program's parser and table structure symbolically (value-set
domain, :mod:`repro.baselines.symbolic`), derives one concrete *witness
candidate* per behaviour class (parser path × table-entry choice), and
checks every property on the spec-faithful reference interpreter for each
candidate. Violations always carry a concrete counterexample packet.

Like the tool it models, the verifier's soundness boundary is the
specification itself: it never executes the *compiled target*, so a
backend that deviates from the spec — SDNet's unimplemented ``reject``
state — is invisible here. The paper's §4 case study hinges on exactly
this blind spot, and the comparison experiments use
:attr:`VerificationReport.analysis_level` to make it explicit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import P4RuntimeError
from ..p4.expr import Expr
from ..p4.interpreter import Interpreter, PipelineResult, Verdict
from ..p4.program import P4Program
from ..p4.table import KeyPattern, MatchKind, Table, TableEntry
from .paths import (
    MAX_CANDIDATES,
    MAX_PARSER_PATHS,
    ParserPath,
    PathEnumerator,
)
from .symbolic import SymbolicState

__all__ = [
    "Property",
    "Violation",
    "VerificationReport",
    "ParserPath",
    "SymbolicVerifier",
    "MAX_PARSER_PATHS",
    "MAX_CANDIDATES",
    "prop_no_invalid_header_access",
    "prop_forwarded",
    "prop_rejected_never_forwarded",
    "equivalence_check",
]


@dataclass(frozen=True)
class Property:
    """A property checked on every candidate behaviour.

    ``check(wire, result)`` returns True when the behaviour satisfies the
    property. ``result`` is the spec-level pipeline result for ``wire``.
    """

    name: str
    check: Callable[[bytes, PipelineResult], bool]
    description: str = ""


@dataclass(frozen=True)
class Violation:
    """A property violation with a concrete witness packet."""

    property_name: str
    witness: bytes
    detail: str


@dataclass
class VerificationReport:
    """Everything one verification run produced."""

    program: str
    properties: list[str]
    violations: list[Violation] = field(default_factory=list)
    parser_paths: int = 0
    candidates: int = 0
    #: Constant reminder of what this tool can see. Always ``"spec"``:
    #: the verifier analyses the program, never the compiled artifact.
    analysis_level: str = "spec"

    @property
    def passed(self) -> bool:
        return not self.violations

    def violations_of(self, property_name: str) -> list[Violation]:
        return [
            v for v in self.violations if v.property_name == property_name
        ]

    def summary(self) -> str:
        lines = [
            f"formal verification of {self.program!r} "
            f"[{self.analysis_level}-level]",
            f"  parser paths: {self.parser_paths}, candidates: "
            f"{self.candidates}",
            f"  verdict: {'PASS' if self.passed else 'FAIL'}",
        ]
        for violation in self.violations:
            lines.append(
                f"  violated {violation.property_name!r}: {violation.detail}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Property constructors
# ----------------------------------------------------------------------
def prop_no_invalid_header_access() -> Property:
    """The classic p4v property: no read/write of an invalid header.

    Violations surface as interpreter runtime errors; the verifier turns
    those into violations of this property automatically, so the check
    function itself always passes.
    """
    return Property(
        "no-invalid-header-access",
        lambda wire, result: True,
        "no path reads or writes a header that was not extracted",
    )


def prop_forwarded(
    name: str,
    predicate: Callable[[PipelineResult], bool],
    description: str = "",
) -> Property:
    """Forwarded packets must satisfy ``predicate`` on the final state."""

    def check(wire: bytes, result: PipelineResult) -> bool:
        if result.verdict is not Verdict.FORWARDED:
            return True
        return predicate(result)

    return Property(name, check, description)


def prop_rejected_never_forwarded() -> Property:
    """Parser-rejectable inputs never leave the device.

    On the specification this is true *by construction* — the spec
    semantics drop rejected packets — which is precisely why a formal
    tool passes programs whose hardware violates it.
    """

    def check(wire: bytes, result: PipelineResult) -> bool:
        return result.verdict is not Verdict.FORWARDED or (
            result.metadata.get("parser_error", 0) == 0
        )

    return Property(
        "rejected-never-forwarded",
        check,
        "packets that reach the reject state are dropped",
    )


# ----------------------------------------------------------------------
# Parser path enumeration — the walker itself lives in
# :mod:`repro.baselines.paths` (shared with the coverage generator);
# the verifier holds a spec-model enumerator and delegates.
# ----------------------------------------------------------------------
class SymbolicVerifier:
    """Spec-level property verifier for one program."""

    def __init__(self, program: P4Program, seed: int = 0):
        self.program = program
        self._rng = random.Random(seed)
        self._enumerator = PathEnumerator(program)

    # -- parser -----------------------------------------------------------
    def parser_paths(self) -> list[ParserPath]:
        """All bounded paths through the parser with their constraints."""
        return self._enumerator.parser_paths()

    def _expr_path(self, expr: Expr) -> str:
        return self._enumerator.expr_path(expr)

    def _constrain_bool(
        self, sym: SymbolicState, expr: Expr, want: bool
    ) -> None:
        self._enumerator.constrain_bool(sym, expr, want)

    # -- candidate construction --------------------------------------------
    def build_packet(self, path: ParserPath, sym: SymbolicState) -> bytes:
        """Materialize a concrete packet following ``path``."""
        return self._enumerator.build_packet(path, sym)

    def _table_choices(self, table: Table) -> list[TableEntry | None]:
        """Branches per table: each installed entry plus the miss."""
        return self._enumerator.table_choices(table)

    def _constrain_for_entry(
        self,
        sym: SymbolicState,
        table: Table,
        entry: TableEntry | None,
        misses: list[TableEntry],
    ) -> bool:
        """Refine ``sym`` so the table chooses ``entry`` (None=miss)."""
        return self._enumerator.constrain_for_entry(
            sym, table, entry, misses
        )

    def _pattern_value(
        self, kind: MatchKind, pattern: KeyPattern, width: int
    ) -> int:
        return self._enumerator.pattern_value(kind, pattern, width)

    def candidates(self) -> list[bytes]:
        """Concrete witness packets covering behaviour classes."""
        return self._enumerator.candidates()

    # -- main entry ----------------------------------------------------------
    def verify(self, properties: list[Property]) -> VerificationReport:
        """Check every property against every candidate behaviour."""
        report = VerificationReport(
            program=self.program.name,
            properties=[p.name for p in properties],
        )
        paths = self.parser_paths()
        report.parser_paths = len(paths)
        candidates = self.candidates()
        report.candidates = len(candidates)

        has_header_access_prop = any(
            p.name == "no-invalid-header-access" for p in properties
        )
        for wire in candidates:
            interp = Interpreter(self.program, honor_reject=True)
            try:
                result = interp.process(wire)
            except P4RuntimeError as exc:
                if has_header_access_prop:
                    report.violations.append(
                        Violation(
                            "no-invalid-header-access", wire, str(exc)
                        )
                    )
                continue
            for prop in properties:
                if prop.name == "no-invalid-header-access":
                    continue
                if not prop.check(wire, result):
                    report.violations.append(
                        Violation(
                            prop.name,
                            wire,
                            f"verdict={result.verdict.value} "
                            f"egress={result.metadata.get('egress_spec')}",
                        )
                    )
        return report


def equivalence_check(
    program_a: P4Program, program_b: P4Program, seed: int = 0
) -> list[tuple[bytes, str]]:
    """Spec-level differential check of two programs.

    Runs both specifications on the union of both candidate sets and
    returns ``(witness, explanation)`` for every behavioural difference.
    This is the formal tool's contribution to the *comparison* use case —
    note it compares specifications, not implementations.
    """
    candidates = (
        SymbolicVerifier(program_a, seed).candidates()
        + SymbolicVerifier(program_b, seed).candidates()
    )
    differences: list[tuple[bytes, str]] = []
    seen: set[bytes] = set()
    for wire in candidates:
        if wire in seen:
            continue
        seen.add(wire)
        results = []
        for program in (program_a, program_b):
            interp = Interpreter(program, honor_reject=True)
            try:
                result = interp.process(wire)
                results.append(
                    (
                        result.verdict.value,
                        result.metadata.get("egress_spec"),
                        result.packet.pack() if result.packet else b"",
                    )
                )
            except P4RuntimeError as exc:
                results.append(("runtime-error", None, str(exc).encode()))
        if results[0] != results[1]:
            differences.append(
                (
                    wire,
                    f"{program_a.name}: {results[0][0]} -> port "
                    f"{results[0][1]}; {program_b.name}: {results[1][0]} "
                    f"-> port {results[1][1]}",
                )
            )
    return differences
