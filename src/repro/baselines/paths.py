"""Shared symbolic path enumeration over the P4 IR.

One walker, two consumers. The p4v-style verifier
(:mod:`repro.baselines.formal`) and the coverage-guided packet
generator (:mod:`repro.netdebug.coverage`) both need the same core
machine: enumerate bounded paths through the parser FSM under the
value-set domain (:mod:`repro.baselines.symbolic`), branch per table
entry (each installed entry plus the miss), and materialize one
concrete witness packet per feasible combination. Historically that
machine lived private to ``SymbolicVerifier``; this module is the
extraction, parameterized by a **deviation model** so path feasibility
can be judged under a *target's* semantics, not only the spec's:

* ``quantize_tcam`` — ternary masks and range bounds quantize to
  power-of-two boundaries (:func:`repro.bitutils.quantize_ternary_mask`
  / :func:`repro.bitutils.quantize_range`) before a witness value is
  derived, and an entry whose quantized patterns match *everything*
  makes the table's miss branch infeasible (the Tofino-style ACL hole).
* ``honor_reject`` — when False (the SDNet deviation), parser-reject
  paths continue through the match-action pipeline, so table choices
  multiply reject paths exactly as they do accept paths.
* ``deparse_field_budget`` — carried for replay construction; it
  changes emitted bytes, not which paths are feasible.

The spec model (all defaults) reproduces the verifier's historical
behaviour bit for bit — :meth:`PathEnumerator.candidates` is the exact
candidate stream ``SymbolicVerifier.candidates`` always produced.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..bitutils import mask, quantize_range, quantize_ternary_mask
from ..exceptions import VerificationError
from ..p4.expr import Const, Expr, FieldRef, MetaRef
from ..p4.parser import ACCEPT, REJECT
from ..p4.program import P4Program
from ..p4.table import KeyPattern, MatchKind, Table, TableEntry
from ..packet.packet import Header, Packet
from .symbolic import Infeasible, SymbolicState, ValueSet

__all__ = [
    "MAX_PARSER_PATHS",
    "MAX_CANDIDATES",
    "DeviationModel",
    "ParserPath",
    "CandidateSpec",
    "PathEnumerator",
]

#: Cap on parser paths and per-program candidates, to bound enumeration.
MAX_PARSER_PATHS = 256
MAX_CANDIDATES = 4096

#: Default witness payload: small, deterministic, checksum-neutral.
DEFAULT_PAYLOAD = b"\x00" * 16


@dataclass(frozen=True)
class DeviationModel:
    """A target's behavioural model, as path-feasibility semantics.

    The defaults are the specification; :meth:`from_compiled` lifts the
    model off a :class:`~repro.target.compiler.CompiledProgram` so the
    enumerator judges feasibility exactly the way the artifact's
    datapath will behave.
    """

    honor_reject: bool = True
    quantize_tcam: bool = False
    deparse_field_budget: int | None = None

    @classmethod
    def spec(cls) -> "DeviationModel":
        return cls()

    @classmethod
    def from_compiled(cls, compiled) -> "DeviationModel":
        return cls(
            honor_reject=getattr(compiled, "honor_reject", True),
            quantize_tcam=getattr(compiled, "quantize_tcam", False),
            deparse_field_budget=getattr(
                compiled, "deparse_field_budget", None
            ),
        )


SPEC_MODEL = DeviationModel()


@dataclass
class ParserPath:
    """One path through the parser FSM."""

    states: list[str]
    extracted: list[str]
    sym: SymbolicState
    outcome: str  # ACCEPT or REJECT


@dataclass
class CandidateSpec:
    """One (parser path × table-entry combination) behaviour class.

    ``choices`` names the intended branch per table —
    ``(table_name, entry_index)`` with ``None`` for the miss — and is
    empty when the path never reaches the pipeline (spec-honored
    reject) or the program has no tables. ``feasible`` is the symbolic
    verdict; infeasible specs carry the pruning ``reason`` instead of a
    witness state.
    """

    path: ParserPath
    sym: SymbolicState
    choices: tuple[tuple[str, int | None], ...]
    feasible: bool = True
    reason: str = ""

    def describe(self) -> str:
        """A stable human-readable identity for coverage artifacts."""
        states = ">".join(self.path.states) or "<start>"
        branches = ",".join(
            f"{name}={'miss' if index is None else index}"
            for name, index in self.choices
        )
        return f"{states}:{self.path.outcome}" + (
            f"[{branches}]" if branches else ""
        )


class PathEnumerator:
    """Symbolic path walker for one program under one deviation model."""

    def __init__(
        self, program: P4Program, model: DeviationModel = SPEC_MODEL
    ):
        self.program = program
        self.model = model

    # -- parser -----------------------------------------------------------
    def parser_paths(self) -> list[ParserPath]:
        """All bounded paths through the parser with their constraints."""
        env = self.program.env
        paths: list[ParserPath] = []
        start = self.program.parser.start

        def walk(
            state_name: str,
            visited: tuple[str, ...],
            extracted: list[str],
            sym: SymbolicState,
        ) -> None:
            if len(paths) >= MAX_PARSER_PATHS:
                return
            if state_name in (ACCEPT, REJECT):
                paths.append(
                    ParserPath(
                        list(visited), list(extracted), sym, state_name
                    )
                )
                return
            if visited.count(state_name) > 1:
                return  # refuse cyclic paths beyond one revisit
            state = self.program.parser.state(state_name)
            new_extracted = extracted + list(state.extracts)
            for header in state.extracts:
                sym.extracted.append(header)

            if state.verify is not None:
                # Branch: verify fails -> reject. Constrain only the
                # common "field op const" shapes; otherwise fork blindly.
                fail_sym = sym.fork()
                fail_sym.note(f"verify fails in {state_name}")
                try:
                    self.constrain_bool(fail_sym, state.verify[0], False)
                    paths.append(
                        ParserPath(
                            list(visited) + [state_name],
                            list(new_extracted),
                            fail_sym,
                            REJECT,
                        )
                    )
                except Infeasible:
                    pass
                try:
                    self.constrain_bool(sym, state.verify[0], True)
                except Infeasible:
                    return

            transition = state.transition
            if not transition.is_select:
                walk(
                    transition.default,
                    visited + (state_name,),
                    new_extracted,
                    sym,
                )
                return
            # Select: branch per case plus the default.
            taken_values: list[int] = []
            single_exact_key = (
                len(transition.keys) == 1
                and isinstance(transition.keys[0], (FieldRef, MetaRef))
            )
            key_path = (
                self.expr_path(transition.keys[0])
                if single_exact_key
                else None
            )
            key_width = (
                transition.keys[0].width(env) if single_exact_key else 0
            )
            for case in transition.cases:
                branch = sym.fork()
                feasible = True
                if single_exact_key and len(case.patterns) == 1:
                    value, mask_ = case.patterns[0]
                    if mask_ == -1:
                        try:
                            branch.constrain_eq(key_path, key_width, value)
                            taken_values.append(value)
                        except Infeasible:
                            feasible = False
                    else:
                        branch.note(
                            f"masked select {value:#x}/{mask_:#x}"
                        )
                if feasible:
                    walk(
                        case.next_state,
                        visited + (state_name,),
                        new_extracted,
                        branch,
                    )
            default_branch = sym.fork()
            feasible = True
            if single_exact_key:
                for value in taken_values:
                    try:
                        default_branch.constrain_ne(
                            key_path, key_width, value
                        )
                    except Infeasible:
                        feasible = False
                        break
            if feasible:
                walk(
                    transition.default,
                    visited + (state_name,),
                    new_extracted,
                    default_branch,
                )

        walk(start, (), [], SymbolicState())
        return paths

    def expr_path(self, expr: Expr) -> str:
        if isinstance(expr, FieldRef):
            return expr.path
        if isinstance(expr, MetaRef):
            return f"meta.{expr.name}"
        raise VerificationError(f"not a simple reference: {expr!r}")

    def constrain_bool(
        self, sym: SymbolicState, expr: Expr, want: bool
    ) -> None:
        """Best-effort refinement of ``expr == want`` on the state.

        Handles ``field == const`` / ``field >= const`` (and conjunctions
        when asserting True). Anything else becomes a note — the
        candidate is over-approximate and the concrete replay decides.
        """
        from ..p4.expr import BinOp

        env = self.program.env
        if isinstance(expr, BinOp):
            if expr.op == "and" and want:
                self.constrain_bool(sym, expr.left, True)
                self.constrain_bool(sym, expr.right, True)
                return
            if expr.op == "and" and not want:
                # ¬(a ∧ b) — cover the ¬a disjunct; the concrete replay
                # keeps this sound (never a false violation).
                self.constrain_bool(sym, expr.left, False)
                return
            simple_ref = isinstance(expr.left, (FieldRef, MetaRef))
            const_right = isinstance(expr.right, Const)
            if simple_ref and const_right:
                path = self.expr_path(expr.left)
                width = expr.left.width(env)
                value = expr.right.value
                if expr.op == "==":
                    if want:
                        sym.constrain_eq(path, width, value)
                    else:
                        sym.constrain_ne(path, width, value)
                    return
                if expr.op == ">=" and not want:
                    # field < value: representable when small.
                    if value <= 64:
                        allowed = frozenset(range(value))
                        sym.set(
                            path,
                            sym.get(path, width).refine_in(allowed),
                        )
                        return
                if expr.op == ">=" and want:
                    sym.note(f"{path} >= {value}")
                    # Prefer a witness at the boundary.
                    current = sym.get(path, width)
                    if current.kind == "any":
                        sym.set(path, ValueSet.concrete(width, value))
                    return
        sym.note(f"unrefined constraint: {expr!r} == {want}")

    # -- candidate construction -------------------------------------------
    def build_packet(
        self,
        path: ParserPath,
        sym: SymbolicState,
        payload: bytes = DEFAULT_PAYLOAD,
    ) -> bytes:
        """Materialize a concrete packet following ``path``."""
        return self.build_packet_object(path, sym, payload).pack()

    def build_packet_object(
        self,
        path: ParserPath,
        sym: SymbolicState,
        payload: bytes = DEFAULT_PAYLOAD,
    ) -> Packet:
        """The witness as a structured :class:`Packet` (unpacked form)."""
        headers: list[Header] = []
        for name in path.extracted:
            spec = self.program.env.header(name)
            values = {}
            for fspec in spec.fields:
                dotted = f"{name}.{fspec.name}"
                if dotted in sym.fields:
                    values[fspec.name] = sym.fields[dotted].pick(
                        fspec.default
                    )
                else:
                    values[fspec.name] = fspec.default
            headers.append(Header(spec, values))
        return Packet(headers=headers, payload=payload)

    def table_choices(self, table: Table) -> list[TableEntry | None]:
        """Branches per table: each installed entry plus the miss."""
        return list(table.entries) + [None]

    def constrain_for_entry(
        self,
        sym: SymbolicState,
        table: Table,
        entry: TableEntry | None,
        misses: list[TableEntry],
    ) -> bool:
        """Refine ``sym`` so the table chooses ``entry`` (None=miss)."""
        try:
            self.apply_entry_constraints(sym, table, entry, misses)
        except Infeasible:
            return False
        return True

    def apply_entry_constraints(
        self,
        sym: SymbolicState,
        table: Table,
        entry: TableEntry | None,
        misses: list[TableEntry],
        prune_universal_miss: bool = False,
    ) -> None:
        """The raising form of :meth:`constrain_for_entry`.

        ``prune_universal_miss`` additionally declares the miss branch
        infeasible when an installed entry matches every packet under
        this model (e.g. a ternary mask quantized to match-all) — the
        coverage enumerator wants that recorded as a prune with its
        reason, while the verifier keeps its historical permissive miss
        (the concrete replay collapses the duplicate anyway).
        """
        env = self.program.env
        if entry is not None:
            for key, pattern in zip(table.keys, entry.patterns):
                if not isinstance(key.expr, (FieldRef, MetaRef)):
                    continue
                path = self.expr_path(key.expr)
                width = key.expr.width(env)
                value = self.pattern_value(key.kind, pattern, width)
                if isinstance(key.expr, FieldRef):
                    sym.constrain_eq(path, width, value)
            return
        if prune_universal_miss:
            for index, miss_entry in enumerate(misses):
                if self.entry_matches_all(table, miss_entry):
                    raise Infeasible(
                        f"entry {index} of table {table.name!r} matches "
                        "every packet under this target model; "
                        "the miss branch is unreachable"
                    )
        for miss_entry in misses:
            for key, pattern in zip(table.keys, miss_entry.patterns):
                if key.kind is not MatchKind.EXACT:
                    continue
                if not isinstance(key.expr, FieldRef):
                    continue
                sym.constrain_ne(
                    self.expr_path(key.expr),
                    key.expr.width(env),
                    pattern.value,
                )

    def pattern_value(
        self, kind: MatchKind, pattern: KeyPattern, width: int
    ) -> int:
        """A key value that hits ``pattern`` under this model."""
        if kind is MatchKind.EXACT:
            return pattern.value
        if kind is MatchKind.LPM:
            return pattern.value  # the prefix's own address matches
        if kind is MatchKind.TERNARY:
            key_mask = pattern.mask or 0
            if self.model.quantize_tcam:
                key_mask = quantize_ternary_mask(key_mask, width)
            return pattern.value & key_mask
        if kind is MatchKind.RANGE:
            if self.model.quantize_tcam and pattern.high is not None:
                low, _high = quantize_range(
                    pattern.value, pattern.high, width
                )
                return low
            return pattern.value
        raise VerificationError(f"unknown kind {kind!r}")

    def entry_matches_all(self, table: Table, entry: TableEntry) -> bool:
        """Whether the entry hits every packet under this model."""
        env = self.program.env
        for key, pattern in zip(table.keys, entry.patterns):
            width = key.expr.width(env)
            if key.kind is MatchKind.EXACT:
                return False
            if key.kind is MatchKind.LPM:
                if (pattern.prefix_len or 0) > 0:
                    return False
            elif key.kind is MatchKind.TERNARY:
                key_mask = pattern.mask or 0
                if self.model.quantize_tcam:
                    key_mask = quantize_ternary_mask(key_mask, width)
                if key_mask != 0:
                    return False
            elif key.kind is MatchKind.RANGE:
                low, high = pattern.value, pattern.high or 0
                if self.model.quantize_tcam:
                    low, high = quantize_range(low, high, width)
                if low > 0 or high < mask(width):
                    return False
        return True

    def candidates(self) -> list[bytes]:
        """Concrete witness packets covering behaviour classes.

        Byte-identical to the historical ``SymbolicVerifier.candidates``
        stream for the spec model (ordering, caps, dedup included).
        """
        tables = list(self.program.all_tables().values())
        packets: list[bytes] = []
        for path in self.parser_paths():
            if path.outcome == REJECT:
                try:
                    packets.append(self.build_packet(path, path.sym))
                except Infeasible:
                    pass
                continue
            choice_lists = [self.table_choices(t) for t in tables]
            if not choice_lists:
                try:
                    packets.append(self.build_packet(path, path.sym))
                except Infeasible:
                    pass
                continue
            for combo in itertools.product(*choice_lists):
                if len(packets) >= MAX_CANDIDATES:
                    break
                sym = path.sym.fork()
                feasible = True
                for table, entry in zip(tables, combo):
                    if not self.constrain_for_entry(
                        sym, table, entry, table.entries
                    ):
                        feasible = False
                        break
                if not feasible:
                    continue
                try:
                    packets.append(self.build_packet(path, sym))
                except Infeasible:
                    continue
        # Deduplicate while preserving order.
        seen: set[bytes] = set()
        unique = []
        for packet in packets:
            if packet not in seen:
                seen.add(packet)
                unique.append(packet)
        return unique

    def candidate_specs(self) -> Iterator[CandidateSpec]:
        """Every (parser path × table combination) with its verdict.

        Unlike :meth:`candidates` this yields *infeasible* combinations
        too (with their pruning reason), applies the deviation model's
        reject semantics (reject paths branch over tables when the
        target ignores reject), and prunes the miss branch behind a
        universal entry — the coverage map's raw material.
        """
        tables = list(self.program.all_tables().values())
        for path in self.parser_paths():
            runs_pipeline = (
                path.outcome == ACCEPT or not self.model.honor_reject
            )
            if not runs_pipeline or not tables:
                yield CandidateSpec(path, path.sym, ())
                continue
            choice_lists = [
                [(index, entry) for index, entry in enumerate(t.entries)]
                + [(None, None)]
                for t in tables
            ]
            for combo in itertools.product(*choice_lists):
                sym = path.sym.fork()
                choices = tuple(
                    (table.name, index)
                    for table, (index, _) in zip(tables, combo)
                )
                feasible, reason = True, ""
                for table, (_, entry) in zip(tables, combo):
                    try:
                        self.apply_entry_constraints(
                            sym,
                            table,
                            entry,
                            table.entries,
                            prune_universal_miss=True,
                        )
                    except Infeasible as exc:
                        feasible, reason = False, f"{table.name}: {exc}"
                        break
                yield CandidateSpec(path, sym, choices, feasible, reason)
