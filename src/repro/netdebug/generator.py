"""The in-device test packet generator.

The generator is one of NetDebug's two hardware modules (Figure 1). It is
*programmable*: a :class:`StreamSpec` describes a stream of test packets —
a template, field sweeps or fuzzing over template fields, rate, count,
wrapping mode and injection point — and the generator materializes and
injects them directly into the data plane under test, bypassing the
external interfaces.

In the paper the generator is itself written in P4; here its
programmability is expressed as declarative stream specifications whose
field programs (sweeps/fuzz) reference the same dotted ``header.field``
paths P4 uses. The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Callable, Iterator

from ..exceptions import NetDebugError
from ..packet.checksum import update_all_checksums
from ..packet.packet import Packet
from ..target.device import NetworkDevice
from ..target.pipeline import TAP_INPUT, TargetRun
from .testpacket import make_probe

__all__ = ["FieldSweep", "FieldFuzz", "StreamSpec", "PacketGenerator"]


@dataclass(frozen=True)
class FieldSweep:
    """Sweep a template field through explicit values or a range.

    ``path`` is a dotted ``header.field`` reference into the template.
    Exactly one of ``values`` or (``start``, ``stop``, ``step``) is used.
    The sweep recycles when the stream is longer than the value list.
    """

    path: str
    values: tuple[int, ...] = ()
    start: int = 0
    stop: int = 0
    step: int = 1

    def value_at(self, index: int) -> int:
        if self.values:
            return self.values[index % len(self.values)]
        span = max(1, (self.stop - self.start + self.step - 1) // self.step)
        return self.start + (index % span) * self.step


@dataclass(frozen=True)
class FieldFuzz:
    """Randomize a template field uniformly over its width (seeded)."""

    path: str
    seed: int = 0


@dataclass
class StreamSpec:
    """One programmable test stream.

    Attributes:
        stream_id: Identifier carried in probe headers.
        template: The base packet every generated packet starts from.
        count: Packets to generate.
        sweeps: Field sweeps applied per packet index.
        fuzzes: Fields randomized per packet.
        wrap: When True the (possibly modified) template is carried
            inside a NetDebug probe; when False it is injected bare and
            the checker correlates by order.
        inject_at: Pipeline tap where packets enter (default: input).
        rate_pps: Injection rate for timed runs; ignored by the
            synchronous path.
        fix_checksums: Recompute IP/L4 checksums after sweeps/fuzzing.
        packets: Alternative to template+sweeps — an explicit packet
            iterable (takes precedence when set).
        timestamps: Optional per-packet injection timestamps (one per
            packet, device-clock units). Workloads with their own
            arrival process (e.g. poisson) carry it here; packets
            beyond the list fall back to the device clock.
        ingress_ports: Optional per-packet ingress ports. Bidirectional
            workloads (e.g. ``tcp_bidir``) carry the direction of each
            packet here; packets beyond the list fall back to port 0,
            the historical fixed ingress.
    """

    stream_id: int
    template: Packet | None = None
    count: int = 1
    sweeps: list[FieldSweep] = dc_field(default_factory=list)
    fuzzes: list[FieldFuzz] = dc_field(default_factory=list)
    wrap: bool = False
    inject_at: str = TAP_INPUT
    rate_pps: float = 1e6
    fix_checksums: bool = True
    packets: list[Packet] | None = None
    timestamps: list[int] | None = None
    ingress_ports: list[int] | None = None

    def timestamp_at(self, seq_no: int, default: int) -> int:
        """The injection timestamp for packet ``seq_no``: the stream's
        own arrival process when it defines one, else ``default`` (the
        device clock). Both injection paths (session lockstep and
        generator run_stream) route through this so their fallback
        semantics cannot diverge."""
        if self.timestamps is not None and seq_no < len(self.timestamps):
            return self.timestamps[seq_no]
        return default

    def port_at(self, seq_no: int) -> int:
        """The ingress port for packet ``seq_no``: the stream's own
        per-packet ports when it defines them, else port 0 — the same
        fallback every injection path uses, so the oracle and the
        device always agree on where a packet entered."""
        if (
            self.ingress_ports is not None
            and seq_no < len(self.ingress_ports)
        ):
            return self.ingress_ports[seq_no]
        return 0

    def materialize(self) -> Iterator[Packet]:
        """Produce the stream's packets, applying sweeps and fuzzing."""
        if self.packets is not None:
            yield from (p.copy() for p in self.packets)
            return
        if self.template is None:
            raise NetDebugError(
                f"stream {self.stream_id} has neither template nor packets"
            )
        rngs = {
            fuzz.path: random.Random(fuzz.seed ^ self.stream_id)
            for fuzz in self.fuzzes
        }
        for index in range(self.count):
            packet = self.template.copy()
            for sweep in self.sweeps:
                packet.set_field(sweep.path, sweep.value_at(index))
            for fuzz in self.fuzzes:
                header_name, _, field_name = fuzz.path.partition(".")
                header = packet.get(header_name)
                width = header.spec.field(field_name).width
                header[field_name] = rngs[fuzz.path].getrandbits(width)
            if self.fix_checksums and packet.has("ipv4"):
                update_all_checksums(packet)
            yield packet


@dataclass
class InjectionRecord:
    """Bookkeeping for one injected test packet."""

    stream_id: int
    seq_no: int
    wire: bytes
    timestamp: int
    run: TargetRun | None = None


class PacketGenerator:
    """Materializes streams and injects them into a device's pipeline."""

    def __init__(self, device: NetworkDevice):
        self._device = device
        self._streams: dict[int, StreamSpec] = {}
        self.injected: list[InjectionRecord] = []

    def configure(self, stream: StreamSpec) -> None:
        """Install (or replace) a stream specification."""
        if stream.packets is None and stream.template is None:
            raise NetDebugError(
                f"stream {stream.stream_id}: no template or packet list"
            )
        self._streams[stream.stream_id] = stream

    def remove_stream(self, stream_id: int) -> None:
        try:
            del self._streams[stream_id]
        except KeyError:
            raise NetDebugError(f"no stream {stream_id}") from None

    @property
    def streams(self) -> list[StreamSpec]:
        return list(self._streams.values())

    # ------------------------------------------------------------------
    # Synchronous injection (functional testing)
    # ------------------------------------------------------------------
    def run_stream(
        self,
        stream_id: int,
        on_injected: Callable[[InjectionRecord], None] | None = None,
    ) -> list[InjectionRecord]:
        """Inject every packet of one stream back-to-back.

        Each injected packet's :class:`TargetRun` is recorded, mirroring
        the hardware generator's completion feedback to the software tool.
        """
        try:
            stream = self._streams[stream_id]
        except KeyError:
            raise NetDebugError(f"no stream {stream_id}") from None

        # Bare streams with no per-packet callback take the block path:
        # all wires are materialized up front and handed to the device
        # in one call, amortizing per-packet setup — the shape a
        # hardware generator has, where the stream program is compiled
        # once and packets are emitted back to back. inject_block runs
        # the batch kernel when the device's engine has one (and falls
        # back to the per-packet pipeline transparently when taps or
        # armed faults need it), carrying the stream's own arrival
        # process and per-packet ingress ports; only a non-input
        # injection tap still needs inject_batch, which is tap-generic.
        batchable = not stream.wrap and on_injected is None
        if batchable and stream.inject_at == TAP_INPUT:
            wires = [packet.pack() for packet in stream.materialize()]
            injected = self._device.inject_block(
                wires,
                timestamps=stream.timestamps,
                ports=stream.ingress_ports,
            )
        elif (
            batchable
            and stream.timestamps is None
            and stream.ingress_ports is None
        ):
            # inject_block only enters at the input tap; other taps
            # keep the tap-generic batch loop (these streams carry no
            # arrival process or per-packet ports of their own).
            wires = [packet.pack() for packet in stream.materialize()]
            injected = self._device.inject_batch(
                wires, at=stream.inject_at
            )
        else:
            injected = None
        if injected is not None:
            records = [
                InjectionRecord(
                    stream.stream_id, seq_no, wires[seq_no], timestamp,
                    run=run,
                )
                for seq_no, (timestamp, run) in enumerate(injected)
            ]
            self.injected.extend(records)
            return records

        records: list[InjectionRecord] = []
        for seq_no, packet in enumerate(stream.materialize()):
            timestamp = stream.timestamp_at(
                seq_no, self._device.clock_cycles
            )
            if stream.wrap:
                wire = make_probe(
                    stream.stream_id, seq_no, timestamp=timestamp,
                    inner=packet,
                ).pack()
            else:
                wire = packet.pack()
            record = InjectionRecord(
                stream.stream_id, seq_no, wire, timestamp
            )
            record.run = self._device.inject(
                wire, at=stream.inject_at, port=stream.port_at(seq_no),
                timestamp=timestamp,
            )
            records.append(record)
            self.injected.append(record)
            if on_injected is not None:
                on_injected(record)
        return records

    def run_all(self) -> list[InjectionRecord]:
        """Inject every configured stream, in stream-id order."""
        records: list[InjectionRecord] = []
        for stream_id in sorted(self._streams):
            records.extend(self.run_stream(stream_id))
        return records

    # ------------------------------------------------------------------
    # Timed injection (performance testing under a simulator)
    # ------------------------------------------------------------------
    def schedule_stream(self, stream_id: int, sim, start_ns: float = 0.0):
        """Schedule a stream's injections on a simulator at its rate."""
        try:
            stream = self._streams[stream_id]
        except KeyError:
            raise NetDebugError(f"no stream {stream_id}") from None
        gap = 1e9 / stream.rate_pps
        packets = list(stream.materialize())

        for seq_no, packet in enumerate(packets):
            def inject(seq_no=seq_no, packet=packet) -> None:
                timestamp = self._device.clock_cycles
                if stream.wrap:
                    wire = make_probe(
                        stream.stream_id, seq_no, timestamp=timestamp,
                        inner=packet,
                    ).pack()
                else:
                    wire = packet.pack()
                record = InjectionRecord(
                    stream.stream_id, seq_no, wire, timestamp
                )
                record.run = self._device.inject(
                    wire, at=stream.inject_at, timestamp=timestamp
                )
                self.injected.append(record)

            sim.schedule_at(start_ns + seq_no * gap, inject)
        return len(packets)
