"""The in-device output packet checker.

The checker is NetDebug's second hardware module (Figure 1). It attaches
to any pipeline tap — the ``output`` tap for end-to-end validation, or an
internal tap for mid-pipeline visibility — and verifies packets at line
rate, in real time.

Checks are *programmable* in the same expression language the data-plane
programs use: an :class:`ExprCheck` wraps a :class:`repro.p4.expr.Expr`
evaluated against the observed packet and metadata, which is the
reproduction's stand-in for the paper's P4-programmed verification logic.
Structured expectations (:class:`ExpectedOutput`) provide oracle-based
matching: exact bytes, per-field constraints, or an egress-port
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable

from ..exceptions import NetDebugError, P4RuntimeError, ReproError
from ..p4.expr import EvalContext, Expr, compile_expr
from ..p4.types import TypeEnv
from ..packet.packet import Packet
from ..target.device import FLOOD_PORT, NetworkDevice
from ..target.pipeline import PacketSnapshot, TAP_OUTPUT
from .report import CheckOutcome, Finding, LatencyStats, StreamStats
from .testpacket import decode_probe

__all__ = [
    "CheckRule",
    "ExprCheck",
    "PredicateCheck",
    "ExpectedOutput",
    "OutputChecker",
]


class CheckRule:
    """Base class of programmable checker rules."""

    name: str = "check"

    def check(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        """Return (ok, detail). ``detail`` explains a failure."""
        raise NotImplementedError

    def applies(self, snapshot: PacketSnapshot) -> bool:
        """Whether this rule should run on the snapshot (default: yes)."""
        return True


class ExprCheck(CheckRule):
    """A check written as a P4 expression over the observed packet.

    The expression must evaluate non-zero for the check to pass. Packets
    missing a header the expression reads are *failures* by default
    (``skip_missing=True`` makes them skips instead), matching a hardware
    checker that only triggers on parseable packets.
    """

    def __init__(
        self,
        name: str,
        expr: Expr,
        env: TypeEnv,
        skip_missing: bool = False,
    ):
        self.name = name
        self._expr = expr
        self._env = env
        self._skip_missing = skip_missing
        # Line-rate path: compile the expression once. Checks over
        # headers the environment does not describe (a checker may
        # reference layouts foreign to the loaded program) fall back to
        # tree-walking evaluation.
        try:
            self._compiled = compile_expr(expr, env)
        except ReproError:
            self._compiled = None

    def _eval(self, snapshot: PacketSnapshot) -> int:
        if self._compiled is not None:
            return self._compiled(snapshot.packet, snapshot.metadata, ())
        ctx = EvalContext(snapshot.packet, snapshot.metadata)
        return self._expr.eval(ctx, self._env)

    def applies(self, snapshot: PacketSnapshot) -> bool:
        if not self._skip_missing:
            return True
        if snapshot.packet is None:
            return True  # check() reports the missing packet
        try:
            self._eval(snapshot)
            return True
        except P4RuntimeError:
            return False

    def check(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        if snapshot.packet is None:
            return False, "no packet at tap"
        try:
            value = self._eval(snapshot)
        except P4RuntimeError as exc:
            return False, f"expression error: {exc}"
        if value:
            return True, ""
        return False, f"expression evaluated to 0 on {snapshot.packet.summary()}"


class LatencyCheck(CheckRule):
    """Per-packet latency SLA: fail when pipeline traversal exceeds a
    cycle budget.

    Reads the tap's local cycle counter (``_cycles_elapsed`` in the
    snapshot metadata), so it works at any tap and needs no probe
    header — the line-rate path a hardware checker would implement as a
    comparator on the timestamp bus.
    """

    def __init__(self, name: str, max_cycles: int):
        self.name = name
        self._max_cycles = max_cycles

    def check(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        elapsed = snapshot.metadata.get("_cycles_elapsed", 0)
        if elapsed <= self._max_cycles:
            return True, ""
        return (
            False,
            f"latency {elapsed} cycles exceeds SLA of "
            f"{self._max_cycles}",
        )


class PredicateCheck(CheckRule):
    """A check backed by an arbitrary Python predicate (host-side logic)."""

    def __init__(
        self,
        name: str,
        predicate: Callable[[PacketSnapshot], bool],
        detail: str = "predicate returned False",
    ):
        self.name = name
        self._predicate = predicate
        self._detail = detail

    def check(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        if self._predicate(snapshot):
            return True, ""
        return False, self._detail


@dataclass
class ExpectedOutput:
    """One oracle expectation for the ordered expectation queue.

    Any combination of constraints may be set; unset constraints are not
    checked. ``forbid=True`` inverts the expectation: the corresponding
    injected packet must produce *no* output (a drop test) — it is
    matched against an output only to report leakage.

    ``egress_ports`` expresses a *flood* prediction: the packet must be
    replicated to every listed port. At a pipeline tap the only
    spec-correct observation is the flood sentinel in ``egress_spec``
    (a unicast to a member port is a misroute and fails); per-port
    emission records are validated against :meth:`expand_per_port`'s
    single-port expectations instead.
    """

    wire: bytes | None = None
    fields: dict[str, int] = dc_field(default_factory=dict)
    egress_port: int | None = None
    egress_ports: tuple[int, ...] | None = None
    forbid: bool = False
    label: str = ""

    def expand_per_port(self) -> list["ExpectedOutput"]:
        """One single-port expectation per predicted flood output port.

        A non-flood expectation expands to itself; this is the per-port
        view a port-level capture (one record per emitted copy) is
        checked against.
        """
        if not self.egress_ports:
            return [self]
        return [
            ExpectedOutput(
                wire=self.wire,
                fields=dict(self.fields),
                egress_port=port,
                forbid=self.forbid,
                label=f"{self.label}@port{port}" if self.label
                else f"@port{port}",
            )
            for port in self.egress_ports
        ]

    def matches(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        if self.wire is not None and snapshot.wire != self.wire:
            return False, f"{self.label}: wire bytes differ"
        if self.egress_ports is not None:
            actual = snapshot.metadata.get("egress_spec")
            if actual != FLOOD_PORT:
                return (
                    False,
                    f"{self.label}: egress port {actual} is not the flood "
                    f"sentinel (expected replication to "
                    f"{sorted(self.egress_ports)})",
                )
        elif self.egress_port is not None:
            actual = snapshot.metadata.get("egress_spec")
            if actual != self.egress_port:
                return (
                    False,
                    f"{self.label}: egress port {actual} != "
                    f"{self.egress_port}",
                )
        packet: Packet | None = snapshot.packet
        for path, expected in self.fields.items():
            if packet is None:
                return False, f"{self.label}: no packet to check {path}"
            try:
                actual = packet.get_field(path)
            except Exception:
                return False, f"{self.label}: missing field {path}"
            if actual != expected:
                return (
                    False,
                    f"{self.label}: {path}={actual:#x} expected "
                    f"{expected:#x}",
                )
        return True, ""


class OutputChecker:
    """Observes a tap, runs rules, tracks streams and expectations."""

    def __init__(self, device: NetworkDevice, tap: str = TAP_OUTPUT):
        self._device = device
        self.tap = tap
        self._rules: list[CheckRule] = []
        self._outcomes: dict[str, CheckOutcome] = {}
        self._expectations: list[ExpectedOutput] = []
        self._next_expectation = 0
        self._armed: ExpectedOutput | None = None
        self._armed_consumed = False
        self.findings: list[Finding] = []
        self.streams: dict[int, StreamStats] = {}
        self.latency = LatencyStats()
        self.observed = 0
        self.observed_alive = 0
        self._attached = False

    # ------------------------------------------------------------------
    # Configuration (driven by the software tool)
    # ------------------------------------------------------------------
    def add_check(self, rule: CheckRule) -> None:
        self._rules.append(rule)
        self._outcomes.setdefault(rule.name, CheckOutcome(rule.name))

    def expect(self, expectation: ExpectedOutput) -> None:
        """Append to the ordered expectation queue."""
        self._expectations.append(expectation)

    # Lockstep correlation: the session arms one expectation immediately
    # before an injection; the tap observation (which fires synchronously
    # during the injection) consumes it. ``disarm`` closes the window and
    # scores a no-show. This is how drop tests avoid mis-pairing.
    def arm(self, expectation: ExpectedOutput) -> None:
        if self._armed is not None:
            raise NetDebugError("an expectation is already armed")
        self._armed = expectation
        self._armed_consumed = False

    def disarm(self) -> None:
        """Close the armed window; score a missing/correct-drop outcome."""
        expectation = self._armed
        self._armed = None
        if expectation is None:
            return
        if not self._armed_consumed and not expectation.forbid:
            self.findings.append(
                Finding(
                    "missing_output",
                    f"{expectation.label or 'expectation'}: no packet "
                    f"reached tap {self.tap!r}",
                    stage=self.tap,
                )
            )

    def attach(self) -> None:
        if self._attached:
            raise NetDebugError("checker already attached")
        self._device.attach_tap(self.tap, self._on_snapshot)
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            self._device.detach_tap(self.tap, self._on_snapshot)
            self._attached = False

    def __enter__(self) -> "OutputChecker":
        self.attach()
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Line-rate observation path
    # ------------------------------------------------------------------
    def _on_snapshot(self, snapshot: PacketSnapshot) -> None:
        self.observed += 1
        if not snapshot.alive:
            self._match_expectation(snapshot)
            return
        self.observed_alive += 1

        # Probe accounting: stream sequence + in-device latency.
        wire = snapshot.wire if snapshot.wire is not None else (
            snapshot.packet.pack() if snapshot.packet is not None else b""
        )
        probe = decode_probe(wire)
        if probe is not None:
            stats = self.streams.setdefault(
                probe.stream_id, StreamStats(probe.stream_id)
            )
            stats.record_rx(probe.seq_no)
            # Tap-local arrival time: injection timestamp plus the cycles
            # the packet spent traversing the pipeline to this tap.
            arrival = snapshot.metadata.get(
                "ingress_global_timestamp", 0
            ) + snapshot.metadata.get("_cycles_elapsed", 0)
            self.latency.record(max(0, arrival - probe.timestamp))

        for rule in self._rules:
            if not rule.applies(snapshot):
                continue
            outcome = self._outcomes[rule.name]
            outcome.checked += 1
            ok, detail = rule.check(snapshot)
            if ok:
                outcome.passed += 1
            else:
                outcome.failed += 1
                if not outcome.first_failure:
                    outcome.first_failure = detail
                self.findings.append(
                    Finding(
                        "check_failed",
                        f"{rule.name}: {detail}",
                        stage=self.tap,
                        stream_id=probe.stream_id if probe else None,
                    )
                )

        self._match_expectation(snapshot)

    def _match_expectation(self, snapshot: PacketSnapshot) -> None:
        if self._armed is not None:
            expectation = self._armed
            self._armed_consumed = True
        elif self._next_expectation < len(self._expectations):
            expectation = self._expectations[self._next_expectation]
            self._next_expectation += 1
        else:
            return
        if not snapshot.alive:
            if not expectation.forbid:
                self.findings.append(
                    Finding(
                        "missing_output",
                        f"{expectation.label or 'expectation'}: packet died "
                        f"before tap {self.tap!r}",
                        stage=self.tap,
                    )
                )
            return
        if expectation.forbid:
            self.findings.append(
                Finding(
                    "unexpected_output",
                    f"{expectation.label or 'forbidden packet'} reached tap "
                    f"{self.tap!r} but should have been dropped",
                    stage=self.tap,
                )
            )
            return
        ok, detail = expectation.matches(snapshot)
        if not ok:
            self.findings.append(
                Finding("output_mismatch", detail, stage=self.tap)
            )

    # ------------------------------------------------------------------
    # Result collection
    # ------------------------------------------------------------------
    def outcomes(self) -> list[CheckOutcome]:
        return list(self._outcomes.values())

    def unmatched_expectations(self) -> int:
        """Expectations never paired with an observation."""
        return len(self._expectations) - self._next_expectation

    def finalize(self, sent_per_stream: dict[int, int] | None = None) -> None:
        """Close the books: loss accounting and dangling expectations."""
        if sent_per_stream:
            for stream_id, sent in sent_per_stream.items():
                stats = self.streams.setdefault(
                    stream_id, StreamStats(stream_id)
                )
                stats.sent = sent
        for stats in self.streams.values():
            stats.finalize()
            if stats.lost:
                self.findings.append(
                    Finding(
                        "sequence_loss",
                        f"stream {stats.stream_id} lost {stats.lost} of "
                        f"{stats.sent} packets",
                        stage=self.tap,
                        stream_id=stats.stream_id,
                    )
                )
        for index in range(self._next_expectation, len(self._expectations)):
            expectation = self._expectations[index]
            if not expectation.forbid:
                self.findings.append(
                    Finding(
                        "missing_output",
                        f"{expectation.label or f'expectation {index}'} was "
                        "never observed",
                        stage=self.tap,
                    )
                )
