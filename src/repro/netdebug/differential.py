"""Cross-backend differential testing: three targets, one spec oracle.

The paper's core claim is that only differential testing against a
specification oracle exposes *silent* toolchain deviations — the ones
that compile cleanly and pass every self-test. With three registered
backends (:data:`repro.netdebug.campaign.TARGETS`) deviating in three
different ways, this module makes that claim executable:

* :class:`DeviantOracle` — a **tree-walking** interpreter parameterized
  by a backend's behavioural model (``honor_reject`` /
  ``quantize_tcam`` / ``deparse_field_budget``). Devices execute the
  *compiled closure* engine, so the oracle is an independent
  implementation of the same semantics — a genuine differential
  counterpart, not a tautology.
* :func:`seeded_batch` — deterministic randomized packet batches
  (valid UDP with randomized five-tuples and sizes, plus the §4
  malformed mixes) keyed entirely by one seed.
* :class:`DifferentialRunner` — executes each batch through every
  target's device, diffs the observations against the spec oracle, and
  classifies every divergence: a diff is **explained** when the
  target's declared deviation tags (``silent_deviations`` on the
  compiled artifact) reproduce it — i.e. the artifact's full deviant
  model predicts exactly the observed behaviour — and **unexplained**
  otherwise. An unexplained diff is a real bug: either an undeclared
  deviation or an engine divergence.

The resulting :class:`DifferentialReport` serializes canonically
(:meth:`DifferentialReport.to_json`), so byte-identical re-runs for the
same seed are a testable property, and **losslessly**
(:meth:`DifferentialReport.from_json` rebuilds a report whose
``to_json`` is byte-identical to its source) — the contract the
cross-version campaign differ (:mod:`repro.netdebug.diffing`) and the
committed golden baselines depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Callable

from ..bitutils import stable_hash64

from ..exceptions import CompileError, NetDebugError
from .report import CanonicalJsonReport
from ..p4.interpreter import Interpreter, Verdict
from ..p4.program import P4Program
from ..p4.stdlib import PROGRAMS
from ..packet.builder import ethernet_frame, udp_packet
from ..sim.traffic import (
    FlowSpec,
    bidirectional_flows,
    default_flow,
    pad_to_size,
)
from ..target.compiler import CompiledProgram
from ..target.device import NetworkDevice
from ..target.sdnet import REJECT_NOT_IMPLEMENTED
from ..target.tofino import DEPARSE_FIELD_BUDGET_EXCEEDED, TCAM_QUANTIZED

__all__ = [
    "DeviantOracle",
    "seeded_batch",
    "seeded_bidir_batch",
    "Observation",
    "PacketDiff",
    "DifferentialCase",
    "DifferentialCell",
    "DifferentialReport",
    "DifferentialRunner",
    "diagnose_report",
]


class DeviantOracle(Interpreter):
    """A tree-walking oracle running one backend's behavioural model.

    With the default parameters this *is* the spec oracle; the deviation
    knobs (``honor_reject`` / ``quantize_tcam`` / ``deparse_field_budget``)
    are the base interpreter's own, so there is exactly one tree-walking
    definition of each deviation — independent of the closure-compiled
    engine the devices actually run, which is what makes the comparison
    a genuine differential.
    """

    def observe(
        self,
        wire: bytes,
        ingress_port: int = 0,
        timestamp: int = 0,
    ) -> "Observation":
        """Run one frame and project the result onto an observation.

        The oracle object is session-scoped: its registers and counters
        persist across ``observe`` calls, so feeding it a cell's frames
        in device arrival order (with each frame's ``ingress_port`` and
        ``timestamp``) keeps its state in lockstep with the device —
        which is what lets cross-backend diffs of ``stateful_firewall``
        attribute register-dependent divergences to deviation tags
        instead of mispredicting the spec.
        """
        return Observation.from_result(
            self.process(
                wire, ingress_port=ingress_port, timestamp=timestamp
            )
        )


def tag_model(
    compiled: CompiledProgram, tag: str
) -> tuple[bool, bool, int | None]:
    """The ``(honor_reject, quantize_tcam, deparse_field_budget)`` model
    of exactly one deviation tag on ``compiled``'s backend."""
    return (
        tag != REJECT_NOT_IMPLEMENTED,
        tag == TCAM_QUANTIZED,
        compiled.deparse_field_budget
        if tag == DEPARSE_FIELD_BUDGET_EXCEEDED
        else None,
    )


@dataclass(frozen=True)
class Observation:
    """What one engine did with one frame: verdict, egress, output bytes."""

    verdict: str
    egress: int | None = None
    wire: str | None = None  # hex, None unless forwarded

    @classmethod
    def from_result(cls, result) -> "Observation":
        """Project a pipeline/interpreter result onto the observable
        surface — the single definition of what 'observable' means, used
        for oracle predictions and device runs alike."""
        if result.verdict is Verdict.FORWARDED:
            return cls(
                verdict=result.verdict.value,
                egress=result.metadata.get("egress_spec"),
                wire=result.packet.pack().hex(),
            )
        return cls(verdict=result.verdict.value)

    def diff_kinds(self, other: "Observation") -> tuple[str, ...]:
        """Which observable dimensions differ from ``other``."""
        kinds = []
        if self.verdict != other.verdict:
            kinds.append("verdict")
        elif self.verdict == "forwarded":
            if self.egress != other.egress:
                kinds.append("egress")
            if self.wire != other.wire:
                kinds.append("wire")
        return tuple(kinds)

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "egress": self.egress,
            "wire": self.wire,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Observation":
        return cls(
            verdict=data["verdict"],
            egress=data.get("egress"),
            wire=data.get("wire"),
        )


def seeded_batch(
    flow: FlowSpec, count: int, seed: int, malformed_fraction: float = 0.3
) -> list[bytes]:
    """A deterministic randomized batch of wire frames.

    Valid frames are UDP with five-tuples randomized around ``flow``
    (destination ports jitter ±8 so range/TCAM boundary entries get
    probed on both sides) and frame sizes across the IMIX spread;
    roughly ``malformed_fraction`` of the batch is the §4 adversarial
    mix (wrong IP version, bad IHL, unknown EtherType). Everything
    derives from ``seed`` — the same seed always yields the same bytes.
    """
    rng = random.Random(seed)
    frames: list[bytes] = []
    for index in range(count):
        if rng.random() < malformed_fraction:
            kind = rng.randrange(3)
            packet = udp_packet(
                flow.dst_ip,
                flow.src_ip + rng.randrange(16),
                flow.dst_port,
                flow.src_port,
                payload=rng.randbytes(8),
                eth_dst=flow.eth_dst,
                eth_src=flow.eth_src,
            )
            if kind == 0:
                packet.get("ipv4")["version"] = rng.choice((0, 5, 6, 15))
            elif kind == 1:
                packet.get("ipv4")["ihl"] = rng.randrange(0, 5)
            else:
                packet = ethernet_frame(
                    flow.eth_dst,
                    flow.eth_src,
                    rng.choice((0xBEEF, 0x1234, 0x86DD)),
                    payload=rng.randbytes(46),
                )
        else:
            packet = udp_packet(
                flow.dst_ip + rng.randrange(8),
                flow.src_ip + rng.randrange(16),
                flow.dst_port + rng.randrange(-8, 9),
                flow.src_port + rng.randrange(8),
                payload=index.to_bytes(4, "big") + rng.randbytes(4),
                eth_dst=flow.eth_dst,
                eth_src=flow.eth_src,
            )
            packet = pad_to_size(
                packet, rng.choice((64, 128, 256, 570, 1024))
            )
        frames.append(packet.pack())
    return frames


def seeded_bidir_batch(
    flow: FlowSpec, count: int, seed: int
) -> list[tuple[bytes, int]]:
    """A deterministic bidirectional batch: ``(wire, ingress_port)``
    pairs from :func:`repro.sim.traffic.bidirectional_flows` — TCP-like
    exchanges with seeded loss and reordering, outbound on the inside
    port, inbound on the outside port. The directional counterpart of
    :func:`seeded_batch` for register-stateful cases."""
    return [
        (packet.pack(), port)
        for packet, port in bidirectional_flows(flow, count, seed=seed)
    ]


@dataclass(frozen=True)
class PacketDiff:
    """One frame on which a target's datapath diverged from the spec."""

    index: int
    kinds: tuple[str, ...]
    spec: Observation
    observed: Observation
    explained_by: tuple[str, ...]

    @property
    def explained(self) -> bool:
        return bool(self.explained_by)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kinds": list(self.kinds),
            "spec": self.spec.to_dict(),
            "observed": self.observed.to_dict(),
            "explained_by": list(self.explained_by),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PacketDiff":
        return cls(
            index=data["index"],
            kinds=tuple(data["kinds"]),
            spec=Observation.from_dict(data["spec"]),
            observed=Observation.from_dict(data["observed"]),
            explained_by=tuple(data.get("explained_by", ())),
        )


@dataclass(frozen=True)
class DifferentialCase:
    """One program to push through the target matrix.

    ``program`` is a stdlib name or a factory returning a fresh
    :class:`P4Program`; ``provision`` (optional) installs identical
    table entries on every target's device — differential testing needs
    identical *configuration* so any divergence is the toolchain's.
    """

    program: str | Callable[[], P4Program]
    provision: Callable[[NetworkDevice], None] | None = None
    label: str = ""
    #: Drive the cell with :func:`seeded_bidir_batch` (directional
    #: TCP-like exchanges) instead of :func:`seeded_batch` — the
    #: workload register-stateful programs need for their return path
    #: to be exercised at all.
    bidirectional: bool = False
    #: Drive the cell with its **covering packet set**
    #: (:func:`repro.netdebug.coverage.covering_set`) instead of a
    #: seeded random batch: one witness per feasible path under each
    #: target's own deviation model, so the cell's divergence findings
    #: come with a provable all-paths-exercised claim (recorded on
    #: :attr:`DifferentialCell.coverage`). ``count`` becomes an upper
    #: bound, not a batch size. Mutually exclusive with
    #: ``bidirectional``.
    coverage: bool = False

    def __post_init__(self) -> None:
        if self.coverage and self.bidirectional:
            raise NetDebugError(
                f"differential case {self.name!r}: coverage witness "
                "sets are unidirectional; drop one of "
                "coverage/bidirectional"
            )

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        return self.program_name

    @property
    def program_name(self) -> str:
        """The underlying program's identity, independent of ``label``
        — what campaign scenarios carry, so cross-version diffing can
        match a labeled cell back to the campaign cells it explains."""
        if isinstance(self.program, str):
            return self.program
        return self.program.__name__

    def build(self) -> P4Program:
        if isinstance(self.program, str):
            from .campaign import require_known_program

            require_known_program(self.program, "differential case")
            return PROGRAMS[self.program]()  # type: ignore[operator]
        return self.program()


@dataclass
class DifferentialCell:
    """One (program × target) cell of the differential matrix.

    ``program`` is the case *name* (label-aware, unique per case);
    ``program_name`` is the underlying program's identity — empty means
    the two coincide. The campaign differ excuses verdict flips against
    ``program_name``, so a labeled case still explains the program's
    campaign cells.
    """

    program: str
    target: str
    packets: int = 0
    compile_rejected: str = ""  # loud CompileError text, if any
    program_name: str = ""
    deviation_tags: tuple[str, ...] = ()
    diffs: list[PacketDiff] = dc_field(default_factory=list)
    #: Frames where the artifact's own deviant model failed to predict
    #: the datapath — engine bugs, never acceptable.
    model_mismatches: list[int] = dc_field(default_factory=list)
    #: Coverage accounting when the cell ran a covering set (see
    #: :attr:`DifferentialCase.coverage`): the map summary plus
    #: ``unexercised`` — feasible paths the injected set failed to
    #: exercise, which :attr:`consistent` treats as fatal.
    coverage: dict | None = None

    @property
    def unexplained(self) -> list[PacketDiff]:
        return [diff for diff in self.diffs if not diff.explained]

    @property
    def consistent(self) -> bool:
        """Every divergence explained, every prediction honored — and,
        for coverage-driven cells, every feasible path exercised."""
        return (
            not self.unexplained
            and not self.model_mismatches
            and not (self.coverage or {}).get("unexercised", 0)
        )

    def diffs_by_tag(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diff in self.diffs:
            for tag in diff.explained_by:
                counts[tag] = counts.get(tag, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """Lossless dump: the full diff list travels, so
        :meth:`from_dict` reconstructs a cell whose own ``to_dict`` is
        identical — the derived fields (``diffs_by_tag``,
        ``unexplained``, ``consistent``) are recomputed, not stored
        authoritatively."""
        payload = {
            "program": self.program,
            "target": self.target,
            "packets": self.packets,
            "compile_rejected": self.compile_rejected,
            "program_name": self.program_name,
            "deviation_tags": list(self.deviation_tags),
            "diffs": [diff.to_dict() for diff in self.diffs],
            "diffs_by_tag": self.diffs_by_tag(),
            "unexplained": len(self.unexplained),
            "model_mismatches": list(self.model_mismatches),
            "consistent": self.consistent,
        }
        # Conditional emission: pre-coverage matrix baselines keep
        # round-tripping byte-identically.
        if self.coverage is not None:
            payload["coverage"] = dict(self.coverage)
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "DifferentialCell":
        return cls(
            program=data["program"],
            target=data["target"],
            packets=data.get("packets", 0),
            compile_rejected=data.get("compile_rejected", ""),
            program_name=data.get("program_name", ""),
            deviation_tags=tuple(data.get("deviation_tags", ())),
            diffs=[
                PacketDiff.from_dict(d) for d in data.get("diffs", [])
            ],
            model_mismatches=list(data.get("model_mismatches", [])),
            coverage=data.get("coverage"),
        )


@dataclass
class DifferentialReport(CanonicalJsonReport):
    """The full (program × target) differential matrix outcome.

    Serializes canonically and losslessly via
    :class:`~repro.netdebug.report.CanonicalJsonReport` — the
    seed-determinism contract and the golden-baseline round trip."""

    seed: int
    count: int
    cells: list[DifferentialCell] = dc_field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return all(cell.consistent for cell in self.cells)

    def cell(self, program: str, target: str) -> DifferentialCell:
        for cell in self.cells:
            if cell.program == program and cell.target == target:
                return cell
        raise NetDebugError(
            f"no differential cell for ({program!r}, {target!r})"
        )

    def deviant_cells(self) -> list[DifferentialCell]:
        return [cell for cell in self.cells if cell.diffs]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "consistent": self.consistent,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DifferentialReport":
        return cls(
            seed=data["seed"],
            count=data["count"],
            cells=[
                DifferentialCell.from_dict(c)
                for c in data.get("cells", [])
            ],
        )

    def summary(self) -> str:
        lines = [
            f"Differential matrix (seed={self.seed}, {self.count} "
            f"packets/cell): "
            f"{'CONSISTENT' if self.consistent else 'INCONSISTENT'}"
        ]
        for cell in self.cells:
            if cell.compile_rejected:
                status = "compile-rejected (loud)"
            elif not cell.diffs:
                status = "spec-identical"
            else:
                tags = ", ".join(
                    f"{tag}×{n}" for tag, n in cell.diffs_by_tag().items()
                )
                status = f"{len(cell.diffs)} diffs [{tags}]"
                if not cell.consistent:
                    status += (
                        f" UNEXPLAINED={len(cell.unexplained)} "
                        f"model-mismatch={len(cell.model_mismatches)}"
                    )
            lines.append(f"  {cell.program:<16} {cell.target:<10} {status}")
        return "\n".join(lines)


class DifferentialRunner:
    """Run differential cases through a set of registered targets."""

    def __init__(
        self,
        cases,
        targets: tuple[str, ...] = ("reference", "sdnet", "tofino"),
        count: int = 64,
        seed: int = 0,
    ):
        self.cases = [
            case if isinstance(case, DifferentialCase)
            else DifferentialCase(case)
            for case in cases
        ]
        names = [case.name for case in self.cases]
        if len(set(names)) != len(names):
            # Name-derived seeds/flows make duplicate names literal
            # clones, and report.cell() could only ever surface the
            # first — reject at the source, like ScenarioMatrix does
            # for its axes.
            raise NetDebugError(
                f"differential cases carry duplicate names: {names}; "
                "give duplicate programs distinct labels"
            )
        self.targets = tuple(targets)
        # Same rigor as the case axis: duplicates clone cells the
        # report can never disambiguate, and an unknown target should
        # fail here, not mid-run after earlier columns completed.
        if len(set(self.targets)) != len(self.targets):
            raise NetDebugError(
                "differential targets carry duplicates: "
                f"{list(self.targets)}"
            )
        from .campaign import require_known_target

        for target in self.targets:
            require_known_target(target, "differential runner")
        self.count = count
        self.seed = seed

    def run(self) -> DifferentialReport:
        # Imported here: campaign imports nothing from this module, but
        # keeping the registry import local avoids any future cycle.
        from .campaign import TARGETS

        report = DifferentialReport(seed=self.seed, count=self.count)
        for case in self.cases:
            # Per-case seed AND flow derive from the case NAME, not its
            # list position: growing or reordering the case list leaves
            # existing cases' batches untouched, so cross-version matrix
            # diffs see added cells instead of every shared cell
            # churning. The flow index is bounded to 0..7 so flows stay
            # inside the provisioners' coverage (the 10.1.0.0/16 route,
            # the ±8 destination-port jitter that probes both range-gate
            # quantization witnesses). The base seed is mixed INTO the
            # hash (not shifted above it) so seeds stay within JSON's
            # interoperable 2^53 range.
            case_seed = stable_hash64(
                f"{self.seed}:{case.name}"
            ) % (1 << 53)
            if case.coverage:
                # Covering sets depend on each target's deviation
                # model AND provisioned entries — built per cell,
                # inside the target loop.
                pairs = None
            else:
                batch = (
                    seeded_bidir_batch
                    if case.bidirectional
                    else seeded_batch
                )
                frames = batch(
                    default_flow(stable_hash64(case.name) % 8),
                    self.count,
                    seed=case_seed,
                )
                # Normalize to (wire, ingress_port) pairs;
                # directionless batches keep the historical fixed
                # ingress, port 0.
                pairs = [
                    frame if isinstance(frame, tuple) else (frame, 0)
                    for frame in frames
                ]
            for target in self.targets:
                device = TARGETS[target](f"diff-{target}-{case.name}")
                cell = DifferentialCell(
                    program=case.name,
                    target=target,
                    program_name=(
                        case.program_name
                        if case.program_name != case.name else ""
                    ),
                )
                report.cells.append(cell)
                try:
                    compiled = device.load(case.build())
                except CompileError as exc:
                    # A loud rejection is the honest outcome for a
                    # program the target cannot build (e.g. RANGE keys
                    # on SDNet) — recorded, not a divergence.
                    cell.compile_rejected = str(exc).splitlines()[0]
                    continue
                if case.provision is not None:
                    case.provision(device)
                cell.deviation_tags = tuple(compiled.silent_deviations)
                cell_pairs = pairs
                if case.coverage:
                    cell_pairs = self._coverage_pairs(
                        cell, compiled, case_seed, target
                    )
                self._run_cell(cell, device, compiled, cell_pairs)
        return report

    def _coverage_pairs(
        self,
        cell: DifferentialCell,
        compiled: CompiledProgram,
        seed: int,
        target: str,
    ) -> list[tuple[bytes, int]]:
        """One cell's covering set: witnesses under the target's own
        deviation model and provisioned tables, with the coverage
        accounting (including the re-replayed ``unexercised`` check)
        recorded on the cell. ``count`` caps the set: exceeding it is
        a loud error, never a silent truncation of the claim."""
        from .coverage import covering_set, verify_coverage
        from ..baselines.paths import DeviationModel

        model = DeviationModel.from_compiled(compiled)
        packets, cmap = covering_set(
            compiled.program, model, seed=seed, target=target
        )
        if len(packets) > self.count:
            raise NetDebugError(
                f"differential cell {cell.program}/{cell.target}: "
                f"covering set needs {len(packets)} packets but the "
                f"runner's count is {self.count}; raise count instead "
                "of weakening the all-paths-exercised claim"
            )
        wires = [packet.pack() for packet in packets]
        cell.coverage = {
            **cmap.summary(),
            "unexercised": len(
                verify_coverage(compiled.program, model, wires, cmap)
            ),
        }
        return [(wire, 0) for wire in wires]

    def _run_cell(
        self,
        cell: DifferentialCell,
        device: NetworkDevice,
        compiled: CompiledProgram,
        pairs: list[tuple[bytes, int]],
    ) -> None:
        # One oracle per DISTINCT behavioural model per cell — the spec,
        # the artifact's full model, and each single-tag model are often
        # the same model (deviation-free artifacts, single-tag backends)
        # and then share one oracle and one tree-walk per frame. Every
        # oracle observes EVERY frame: for stateful programs that keeps
        # each model's counters/registers evolving in lockstep with the
        # device, which sees the same frame sequence.
        oracles: dict[tuple, DeviantOracle] = {}

        def oracle_for(honor_reject, quantize, budget) -> DeviantOracle:
            key = (honor_reject, quantize, budget)
            if key not in oracles:
                oracles[key] = DeviantOracle(
                    compiled.program,
                    honor_reject=honor_reject,
                    quantize_tcam=quantize,
                    deparse_field_budget=budget,
                )
            return oracles[key]

        spec_oracle = oracle_for(True, False, None)
        model_oracle = oracle_for(
            compiled.honor_reject,
            compiled.quantize_tcam,
            compiled.deparse_field_budget,
        )
        tag_oracles = {
            tag: oracle_for(*tag_model(compiled, tag))
            for tag in compiled.silent_deviations
        }
        for index, (wire, port) in enumerate(pairs):
            cell.packets += 1
            # Every oracle sees the same ingress port and injection
            # timestamp the device will: state threads identically.
            timestamp = device.clock_cycles
            predictions = {
                key: oracle.observe(
                    wire, ingress_port=port, timestamp=timestamp
                )
                for key, oracle in oracles.items()
            }
            spec = predictions[(True, False, None)]
            model = predictions[
                (
                    compiled.honor_reject,
                    compiled.quantize_tcam,
                    compiled.deparse_field_budget,
                )
            ]
            fired = {
                tag: predictions[tag_model(compiled, tag)].diff_kinds(spec)
                for tag in tag_oracles
            }
            run = device.inject(wire, port=port, timestamp=timestamp)
            observed = Observation.from_result(run.result)

            kinds = spec.diff_kinds(observed)
            if model.diff_kinds(observed):
                # The independent tree-walking model of this artifact's
                # declared deviations disagrees with the datapath: an
                # engine bug, not an explainable deviation.
                cell.model_mismatches.append(index)
            if not kinds:
                continue
            # Attribute the diff to the deviations that reproduce a
            # divergence of the same kind on this frame; when the kinds
            # only emerge from the tags' interaction, fall back to every
            # tag that diverges at all (full-model match is enforced
            # separately via model_mismatches).
            explained = tuple(
                tag for tag, tag_kinds in fired.items()
                if set(tag_kinds) & set(kinds)
            )
            if not explained:
                explained = tuple(
                    tag for tag, tag_kinds in fired.items() if tag_kinds
                )
            cell.diffs.append(
                PacketDiff(
                    index=index,
                    kinds=kinds,
                    spec=spec,
                    observed=observed,
                    explained_by=explained,
                )
            )


def diagnose_report(report: DifferentialReport) -> list[str]:
    """Human-readable 'which backend deviates and why' lines.

    Cross-references each deviant cell's diff-producing tags with the
    deviation capability map (:mod:`repro.netdebug.localization`).
    """
    from .localization import DEVIATION_CAPABILITIES

    lines: list[str] = []
    for cell in report.deviant_cells():
        for tag, hits in cell.diffs_by_tag().items():
            stage, _, why = DEVIATION_CAPABILITIES.get(
                tag, ("unknown", (), f"unmapped deviation tag {tag!r}")
            )
            lines.append(
                f"{cell.program} on {cell.target}: {hits} packets diverge "
                f"at stage {stage!r} [{tag}] — {why}"
            )
    return lines
