"""Client API for the campaign service (:mod:`repro.netdebug.service`).

The submit → stream → diff-gate loop as three calls::

    from repro.netdebug.client import ServiceClient

    client = ServiceClient(("ci-fleet", 47816))   # secret from env
    handle = client.submit(matrix, priority=1, tenant="ci", weight=3.0)
    report = handle.stream(on_result=lambda key, rep, prog: ...)
    verdict = handle.gate(golden_report)          # server-side diff

Everything rides one JSON-only, HMAC-authenticated connection per
campaign (key from ``REPRO_SERVICE_SECRET`` unless passed explicitly).
``handle.result()`` / ``handle.stream()`` return a
:class:`~repro.netdebug.campaign.CampaignReport` whose canonical JSON
is **byte-identical** to a serial ``run_campaign`` of the same matrix,
so existing golden baselines gate service-mode runs unchanged.
"""

from __future__ import annotations

import socket

from ..exceptions import ClusterError
from .campaign import (
    CampaignProgress,
    CampaignReport,
    ScenarioMatrix,
    ScenarioResult,
    matrix_to_dict,
)
from .transport import Channel, resolve_secret

__all__ = ["ServiceClient", "CampaignHandle"]


class CampaignHandle:
    """One accepted campaign: its id and its live result stream."""

    def __init__(self, channel: Channel, campaign: int, name: str,
                 total: int):
        self._channel = channel
        self.campaign = campaign
        self.name = name
        self.total = total
        self._report: CampaignReport | None = None
        self.meta: dict = {}

    def stream(self, on_result=None) -> CampaignReport:
        """Consume the live result stream until the campaign completes.

        ``on_result(scenario_key, session_report, progress)`` fires for
        every shard the moment the service relays it — the same hook
        shape :func:`~repro.netdebug.campaign.run_campaign` takes, so a
        :class:`~repro.netdebug.cluster.ProgressPrinter` plugs in
        unchanged. Returns the reassembled
        :class:`~repro.netdebug.campaign.CampaignReport`; raises
        :class:`ClusterError` if the campaign fails or the connection
        drops mid-stream.
        """
        if self._report is not None:
            return self._report
        while True:
            frame = self._channel.recv(json_only=True)
            if frame is None:
                raise ClusterError(
                    f"service connection closed with campaign "
                    f"{self.campaign} incomplete"
                )
            kind = frame.get("type")
            if kind == "result":
                if on_result is not None:
                    result = ScenarioResult.from_dict(frame["result"])
                    progress = frame.get("progress", {})
                    on_result(
                        result.scenario.key,
                        result.report,
                        CampaignProgress(
                            completed=progress.get("completed", 0),
                            total=progress.get("total", self.total),
                            failed=progress.get("failed", 0),
                        ),
                    )
            elif kind == "complete":
                report = CampaignReport.from_dict(frame["report"])
                report.meta.update(frame.get("meta", {}))
                self.meta = dict(frame.get("meta", {}))
                self._report = report
                return report
            elif kind == "failed":
                raise ClusterError(
                    f"campaign {self.campaign} failed: "
                    f"{frame.get('error')}"
                )
            else:
                raise ClusterError(
                    f"service sent unexpected frame type {kind!r} "
                    "mid-stream"
                )

    def result(self) -> CampaignReport:
        """The completed report (drains the stream without a hook)."""
        return self.stream()

    def gate(self, baseline: CampaignReport) -> dict:
        """Run the diff kernel server-side against ``baseline``.

        Returns the verdict frame payload:
        ``{"regression": bool, "identical": bool, "summary": str}``.
        The campaign must have completed (call after :meth:`result`).
        """
        self.result()
        self._channel.send(
            {
                "type": "gate",
                "campaign": self.campaign,
                "baseline": baseline.to_dict(),
            }
        )
        reply = self._channel.recv(json_only=True)
        if reply is None or reply.get("type") != "gated":
            raise ClusterError(
                f"gate request for campaign {self.campaign} was "
                f"refused: {(reply or {}).get('error', 'connection lost')}"
            )
        return reply

    def close(self) -> None:
        self._channel.close()


class ServiceClient:
    """Talks to one campaign-service daemon.

    ``secret=None`` resolves ``REPRO_SERVICE_SECRET`` from the
    environment (no env either → unauthenticated, matching a daemon
    run ``--insecure``). Every method opens its own connection except
    :meth:`submit`, whose connection lives on in the returned
    :class:`CampaignHandle` as the result stream.
    """

    def __init__(
        self,
        address: tuple[str, int],
        secret: str | bytes | None = None,
        timeout: float | None = None,
    ):
        self.address = address
        self.timeout = timeout
        # Explicit secret, else the environment; None (no env either)
        # speaks unauthenticated — matching a daemon run --insecure.
        self.secret = resolve_secret(secret)

    def _connect(self) -> Channel:
        try:
            sock = socket.create_connection(self.address, timeout=10.0)
        except OSError as exc:
            raise ClusterError(
                f"could not reach the campaign service at "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        sock.settimeout(self.timeout)
        return Channel(sock, secret=self.secret)

    def _request(self, message: dict, expect: str) -> dict:
        channel = self._connect()
        try:
            channel.send(message)
            reply = channel.recv(json_only=True)
        finally:
            channel.close()
        if reply is None:
            raise ClusterError(
                "campaign service closed the connection without replying"
            )
        if reply.get("type") != expect:
            raise ClusterError(
                f"campaign service refused the request: "
                f"{reply.get('error', reply)}"
            )
        return reply

    def submit(
        self,
        matrix: ScenarioMatrix,
        name: str = "campaign",
        priority: int = 0,
        weight: float = 1.0,
        tenant: str = "default",
        engine: str = "closure",
    ) -> CampaignHandle:
        """Submit ``matrix``; returns immediately with the live handle.

        ``priority`` picks the strict tier (higher preempts lower for
        every dispatch); ``weight`` is the deficit-round-robin share
        within the tier. The matrix must be fully declarative
        (predicate-carrying faults are refused — service job frames are
        data, never code).
        """
        channel = self._connect()
        try:
            channel.send(
                {
                    "type": "submit",
                    "name": name,
                    "tenant": tenant,
                    "priority": int(priority),
                    "weight": float(weight),
                    "engine": engine,
                    "matrix": matrix_to_dict(matrix),
                }
            )
            reply = channel.recv(json_only=True)
        except BaseException:
            channel.close()
            raise
        if reply is None or reply.get("type") != "accepted":
            channel.close()
            raise ClusterError(
                f"campaign submission refused: "
                f"{(reply or {}).get('error', 'connection lost')}"
            )
        return CampaignHandle(
            channel,
            campaign=reply["campaign"],
            name=reply.get("name", name),
            total=reply["total"],
        )

    def run(self, matrix: ScenarioMatrix, on_result=None, **kwargs
            ) -> CampaignReport:
        """Submit and block until complete — the one-call convenience."""
        handle = self.submit(matrix, **kwargs)
        try:
            return handle.stream(on_result=on_result)
        finally:
            handle.close()

    def workers(self) -> list[dict]:
        """The fleet: session, tags, slots, liveness, work counters."""
        return self._request({"type": "workers"}, "workers")["workers"]

    def campaigns(self) -> list[dict]:
        """Active + retained campaigns with scheduling counters."""
        return self._request({"type": "status"}, "status")["campaigns"]

    def gate(self, campaign: int, baseline: CampaignReport) -> dict:
        """Server-side diff of a retained campaign against ``baseline``."""
        return self._request(
            {
                "type": "gate",
                "campaign": campaign,
                "baseline": baseline.to_dict(),
            },
            "gated",
        )

    def stop(self) -> None:
        """Ask the daemon to shut down."""
        self._request({"type": "stop"}, "ok")
