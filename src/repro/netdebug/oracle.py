"""The reference oracle as a session-scoped protocol object.

Historically the oracle was a bare function
(:func:`repro.netdebug.session.reference_expectation`): every call built
a fresh spec-faithful interpreter, predicted one packet, and threw the
interpreter away. That is exactly right for stateless programs — and
exactly wrong for programs whose behaviour threads *connection state*
across the packet sequence: ``stateful_firewall``'s register-backed flow
table means the spec-correct prediction for an inbound packet depends on
every outbound packet that preceded it.

This module makes the oracle an object with an explicit lifetime:

* :class:`ReferenceOracle` owns one long-lived
  :class:`~repro.p4.interpreter.Interpreter` whose register file (and
  counters) persist across :meth:`~ReferenceOracle.expect` calls. Its
  contract is **arrival order**: feed it packets in exactly the order
  the device under test will process them, with the same per-packet
  ``ingress_port`` and ``timestamp``, and its predictions stay
  byte-exact for stateful programs.
* :class:`StatelessOracle` is the drop-in subclass reproducing the
  historical fresh-state-per-packet semantics byte for byte — the
  default everywhere, so existing campaigns and the committed golden
  baselines are unaffected unless a matrix opts into ``stateful``.

Everything that consumes expectations (sessions, campaigns, regression
recording) goes through an oracle object; ``reference_expectation``
survives only as a thin shim over :class:`StatelessOracle`.
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import NetDebugError
from ..p4.interpreter import Interpreter, Verdict
from ..p4.program import P4Program
from ..target.device import FLOOD_PORT
from .checker import ExpectedOutput

__all__ = [
    "ReferenceOracle",
    "StatelessOracle",
    "ORACLES",
    "OracleFactory",
    "require_known_oracle",
]

#: The signature every oracle factory satisfies: build one oracle for a
#: session over ``program`` on a device with ``num_ports`` ports.
OracleFactory = Callable[..., "ReferenceOracle"]


class ReferenceOracle:
    """A session-scoped spec-faithful oracle with persistent state.

    One instance serves one validation session (or one campaign shard):
    its interpreter's registers and counters evolve with every
    :meth:`expect` call, exactly as the device's runtime state evolves
    with every injected packet. The **arrival-order contract**: call
    :meth:`expect` once per packet, in injection order, with the same
    ``ingress_port`` and ``timestamp`` the device will see — predictions
    for register-dependent behaviour are only meaningful under that
    discipline, which is also why campaign sharding keeps all packets
    of one session on one shard (state cannot thread across shards).
    """

    #: Whether predictions depend on the packets fed before them.
    stateful = True

    def __init__(
        self, program: P4Program, num_ports: int | None = None
    ) -> None:
        self.program = program
        self.num_ports = num_ports
        self._interpreter = self._fresh_interpreter()

    def _fresh_interpreter(self) -> Interpreter:
        return Interpreter(self.program, honor_reject=True)

    @property
    def interpreter(self) -> Interpreter:
        """The oracle's live interpreter (inspect ``.state`` for the
        predicted register file in tests)."""
        return self._interpreter

    def reset(self) -> None:
        """Forget all threaded state (fresh registers and counters)."""
        self._interpreter = self._fresh_interpreter()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _process(self, wire: bytes, ingress_port: int, timestamp: int):
        return self._interpreter.process(
            wire, ingress_port=ingress_port, timestamp=timestamp
        )

    def expect(
        self,
        wire: bytes,
        ingress_port: int = 0,
        timestamp: int = 0,
        label: str = "",
    ) -> ExpectedOutput:
        """Predict the spec-correct outcome for the *next* packet.

        A drop/reject prediction becomes a ``forbid`` expectation; a
        unicast forward prediction pins the exact output bytes and
        egress port. ``timestamp`` is the planned injection time in
        device-clock cycles; programs whose output bytes depend on it
        (e.g. ``int_telemetry`` stamping ``ingress_ts``) validate
        byte-exactly only when the oracle sees the same timestamp the
        device will.

        A *flood* prediction (``egress_spec`` equal to
        :data:`~repro.target.device.FLOOD_PORT`) is expanded to the
        per-port expected outputs — every port except the ingress —
        which requires the oracle to know the device's port count:
        constructed without ``num_ports``, a flood prediction raises
        :class:`NetDebugError` instead of silently expanding to zero
        ports (an empty ``egress_ports`` checks nothing, the same false
        confidence the missing-``egress_spec`` guard below exists to
        prevent). Raises :class:`NetDebugError` likewise when the run
        produced no ``egress_spec`` metadata at all.
        """
        result = self._process(wire, ingress_port, timestamp)
        if result.verdict is not Verdict.FORWARDED:
            return ExpectedOutput(
                forbid=True,
                label=label or f"must-drop ({result.verdict.value})",
            )
        egress = result.metadata.get("egress_spec")
        if egress is None:
            raise NetDebugError(
                f"reference oracle forwarded a packet on "
                f"{self.program.name!r} without an egress_spec in its "
                "metadata; the oracle cannot predict an output port"
            )
        if egress == FLOOD_PORT:
            if self.num_ports is None:
                raise NetDebugError(
                    f"reference oracle predicted a flood on "
                    f"{self.program.name!r} but was built without "
                    "num_ports; an empty per-port expansion would "
                    "validate nothing — pass the device's port count"
                )
            ports = tuple(
                p for p in range(self.num_ports) if p != ingress_port
            )
            return ExpectedOutput(
                wire=result.packet.pack(),
                egress_ports=ports,
                label=label or "reference-flood",
            )
        return ExpectedOutput(
            wire=result.packet.pack(),
            egress_port=egress,
            label=label or "reference-output",
        )

    def expect_all(
        self,
        wires,
        ingress_ports=None,
        timestamps=None,
        label: str = "",
    ) -> list[ExpectedOutput]:
        """Predict a whole arrival sequence, in order.

        ``ingress_ports`` / ``timestamps`` cover a prefix (short or
        ``None`` falls back to port 0 / timestamp 0, matching the
        injection paths' fallbacks); ``label`` becomes ``label#i``.
        """
        ports_covered = len(ingress_ports) if ingress_ports else 0
        times_covered = len(timestamps) if timestamps else 0
        return [
            self.expect(
                wire,
                ingress_port=(
                    ingress_ports[i] if i < ports_covered else 0
                ),
                timestamp=timestamps[i] if i < times_covered else 0,
                label=f"{label}#{i}" if label else "",
            )
            for i, wire in enumerate(wires)
        ]


class StatelessOracle(ReferenceOracle):
    """The historical fresh-state-per-packet oracle, byte for byte.

    Every :meth:`~ReferenceOracle.expect` call runs on a brand-new
    interpreter, so predictions are independent of arrival order —
    correct for register-free programs, and the semantics every
    pre-existing campaign, regression suite and golden baseline were
    recorded under.
    """

    stateful = False

    def _process(self, wire: bytes, ingress_port: int, timestamp: int):
        return self._fresh_interpreter().process(
            wire, ingress_port=ingress_port, timestamp=timestamp
        )


#: Named oracle factories scenario matrices reference (``oracle=`` axis).
#: Module-level classes only: campaign job tuples carry the factory into
#: worker processes by pickle-by-reference.
ORACLES: dict[str, OracleFactory] = {
    "stateless": StatelessOracle,
    "stateful": ReferenceOracle,
}


def require_known_oracle(oracle: str, where: str) -> None:
    """Raise :class:`NetDebugError` unless ``oracle`` names a registered
    factory — the oracle-axis counterpart of ``require_known_target``."""
    if oracle not in ORACLES:
        known = ", ".join(sorted(ORACLES))
        raise NetDebugError(
            f"{where} references unknown oracle {oracle!r}; "
            f"registry offers: {known}"
        )
