"""Fault localization via internal tap points.

The paper's core visibility claim: *"If a bug prevents packets from being
correctly forwarded to the output interfaces of the device, users can find
where the fault occurred, even inside the data plane."* This module
implements two complementary strategies over the pipeline's taps:

* **Passive trace localization** — inject once at the input with
  observers on every tap; the fault lies in the first stage whose
  snapshot is dead or whose packet bytes diverge from the previous tap.
* **Active bisection** — inject the same packet *at* successive taps
  (NetDebug's direct-injection capability); the packet survives exactly
  when it enters downstream of the fault, which brackets the faulty
  stage even when passive observation is unavailable.

An external tester has neither capability: it can only report that the
device as a whole ate the packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..p4.interpreter import Verdict
from ..target.device import NetworkDevice
from ..target.pipeline import PacketSnapshot, TAP_INPUT

__all__ = ["LocalizationResult", "localize_fault", "bisect_fault"]


@dataclass
class LocalizationResult:
    """Where a fault was found and how."""

    found: bool
    stage: str = ""
    method: str = ""
    evidence: list[str] = field(default_factory=list)
    injections_used: int = 0

    def __str__(self) -> str:
        if not self.found:
            return "no fault localized"
        return (
            f"fault localized at stage {self.stage!r} via {self.method} "
            f"({self.injections_used} injections)"
        )


def localize_fault(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Passive localization: one injection, observers at every tap.

    Detects both packet death (drop/blackhole) and silent corruption
    (the packet survives but its bytes change unexpectedly between taps).
    Death in a stage the *program* commands (a table action dropping) is
    still reported — distinguishing intended from faulty drops is the
    caller's job, typically via the reference oracle.
    """
    stages = device.stage_names()
    snapshots: dict[str, PacketSnapshot] = {}

    observers = {}
    for stage in stages:
        def observer(snapshot, stage=stage):
            snapshots[stage] = snapshot

        observers[stage] = observer
        device.attach_tap(stage, observer)
    try:
        device.inject(wire, at=TAP_INPUT, port=ingress_port)
    finally:
        for stage, observer in observers.items():
            device.detach_tap(stage, observer)

    evidence: list[str] = []
    previous_alive: str | None = None
    for stage in stages:
        snapshot = snapshots.get(stage)
        if snapshot is None:
            # The packet never reached this tap: it died in this stage
            # (the stage publishes a dead snapshot) or an earlier one.
            return LocalizationResult(
                found=True,
                stage=previous_alive or stage,
                method="passive-trace (disappearance)",
                evidence=evidence
                + [f"no snapshot at tap {stage!r}"],
                injections_used=1,
            )
        if not snapshot.alive:
            evidence.append(
                f"tap {stage!r}: packet dead ({snapshot.verdict_hint})"
            )
            return LocalizationResult(
                found=True,
                stage=stage,
                method="passive-trace (death)",
                evidence=evidence,
                injections_used=1,
            )
        evidence.append(f"tap {stage!r}: alive")
        previous_alive = stage
    return LocalizationResult(
        found=False, evidence=evidence, injections_used=1
    )


def bisect_fault(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Active localization: inject at successive taps to bracket a fault.

    Uses NetDebug's ability to inject anywhere in the pipeline. If a
    packet injected at tap *k* dies but one injected at tap *k+1*
    survives to the output, the fault sits in the stage right after
    tap *k*. Runs O(log n) injections via binary search.
    """
    stages = device.stage_names()

    def survives(inject_at: str) -> bool:
        run = device.inject(wire, at=inject_at, port=ingress_port)
        return run.result.verdict is Verdict.FORWARDED

    injections = 0
    # The fault exists iff injection at the very start dies.
    injections += 1
    if survives(TAP_INPUT):
        return LocalizationResult(
            found=False,
            method="active-bisection",
            evidence=["packet survives from input; no fault on its path"],
            injections_used=injections,
        )

    low = 0                      # known-dead entry index
    high = len(stages) - 1       # output tap: entering here always survives
    evidence = [f"entering at {stages[low]!r}: dies"]
    while high - low > 1:
        mid = (low + high) // 2
        injections += 1
        if survives(stages[mid]):
            evidence.append(f"entering at {stages[mid]!r}: survives")
            high = mid
        else:
            evidence.append(f"entering at {stages[mid]!r}: dies")
            low = mid
    # inject_at=s makes s the first stage executed, so a fault in stage F
    # kills exactly the injections entering at or before F. The boundary
    # stage stages[low] (dies) / stages[low+1] (survives) pins F =
    # stages[low]. The input tap itself does no processing, so low == 0
    # degenerates to the first real stage.
    faulty = stages[low] if low > 0 else stages[1]
    return LocalizationResult(
        found=True,
        stage=faulty,
        method="active-bisection",
        evidence=evidence,
        injections_used=injections,
    )


def localize(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Passive first; fall back to active bisection when inconclusive."""
    result = localize_fault(device, wire, ingress_port)
    if result.found:
        return result
    active = bisect_fault(device, wire, ingress_port)
    active.injections_used += result.injections_used
    return active
