"""Fault localization via internal tap points.

The paper's core visibility claim: *"If a bug prevents packets from being
correctly forwarded to the output interfaces of the device, users can find
where the fault occurred, even inside the data plane."* This module
implements two complementary strategies over the pipeline's taps:

* **Passive trace localization** — inject once at the input with
  observers on every tap; the fault lies in the first stage whose
  snapshot is dead or whose packet bytes diverge from the previous tap.
* **Active bisection** — inject the same packet *at* successive taps
  (NetDebug's direct-injection capability); the packet survives exactly
  when it enters downstream of the fault, which brackets the faulty
  stage even when passive observation is unavailable.

An external tester has neither capability: it can only report that the
device as a whole ate the packet.

The module also carries the **deviation capability map**
(:data:`DEVIATION_CAPABILITIES`): for every known silent-deviation tag
a backend can stamp on its compiled artifact, which pipeline stage the
deviation corrupts and which differential finding kinds it can produce.
:func:`diagnose_deviations` / :func:`explain_findings` turn a 3-way
(program × target) sweep's per-cell failures into "backend X deviates
in stage Y because Z" answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..p4.interpreter import Verdict
from ..target.compiler import CompiledProgram
from ..target.device import NetworkDevice
from ..target.pipeline import PacketSnapshot, TAP_INPUT
from ..target.sdnet import REJECT_NOT_IMPLEMENTED
from ..target.tofino import DEPARSE_FIELD_BUDGET_EXCEEDED, TCAM_QUANTIZED

__all__ = [
    "LocalizationResult",
    "localize_fault",
    "bisect_fault",
    "DEVIATION_CAPABILITIES",
    "DeviationDiagnosis",
    "diagnose_deviations",
    "explain_findings",
]


@dataclass
class LocalizationResult:
    """Where a fault was found and how."""

    found: bool
    stage: str = ""
    method: str = ""
    evidence: list[str] = field(default_factory=list)
    injections_used: int = 0

    def __str__(self) -> str:
        if not self.found:
            return "no fault localized"
        return (
            f"fault localized at stage {self.stage!r} via {self.method} "
            f"({self.injections_used} injections)"
        )


def localize_fault(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Passive localization: one injection, observers at every tap.

    Detects both packet death (drop/blackhole) and silent corruption
    (the packet survives but its bytes change unexpectedly between taps).
    Death in a stage the *program* commands (a table action dropping) is
    still reported — distinguishing intended from faulty drops is the
    caller's job, typically via the reference oracle.
    """
    stages = device.stage_names()
    snapshots: dict[str, PacketSnapshot] = {}

    observers = {}
    for stage in stages:
        def observer(snapshot, stage=stage):
            snapshots[stage] = snapshot

        observers[stage] = observer
        device.attach_tap(stage, observer)
    try:
        device.inject(wire, at=TAP_INPUT, port=ingress_port)
    finally:
        for stage, observer in observers.items():
            device.detach_tap(stage, observer)

    evidence: list[str] = []
    previous_alive: str | None = None
    for stage in stages:
        snapshot = snapshots.get(stage)
        if snapshot is None:
            # The packet never reached this tap: it died in this stage
            # (the stage publishes a dead snapshot) or an earlier one.
            return LocalizationResult(
                found=True,
                stage=previous_alive or stage,
                method="passive-trace (disappearance)",
                evidence=evidence
                + [f"no snapshot at tap {stage!r}"],
                injections_used=1,
            )
        if not snapshot.alive:
            evidence.append(
                f"tap {stage!r}: packet dead ({snapshot.verdict_hint})"
            )
            return LocalizationResult(
                found=True,
                stage=stage,
                method="passive-trace (death)",
                evidence=evidence,
                injections_used=1,
            )
        evidence.append(f"tap {stage!r}: alive")
        previous_alive = stage
    return LocalizationResult(
        found=False, evidence=evidence, injections_used=1
    )


def bisect_fault(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Active localization: inject at successive taps to bracket a fault.

    Uses NetDebug's ability to inject anywhere in the pipeline. If a
    packet injected at tap *k* dies but one injected at tap *k+1*
    survives to the output, the fault sits in the stage right after
    tap *k*. Runs O(log n) injections via binary search.
    """
    stages = device.stage_names()

    def survives(inject_at: str) -> bool:
        run = device.inject(wire, at=inject_at, port=ingress_port)
        return run.result.verdict is Verdict.FORWARDED

    injections = 0
    # The fault exists iff injection at the very start dies.
    injections += 1
    if survives(TAP_INPUT):
        return LocalizationResult(
            found=False,
            method="active-bisection",
            evidence=["packet survives from input; no fault on its path"],
            injections_used=injections,
        )

    low = 0                      # known-dead entry index
    high = len(stages) - 1       # output tap: entering here always survives
    evidence = [f"entering at {stages[low]!r}: dies"]
    while high - low > 1:
        mid = (low + high) // 2
        injections += 1
        if survives(stages[mid]):
            evidence.append(f"entering at {stages[mid]!r}: survives")
            high = mid
        else:
            evidence.append(f"entering at {stages[mid]!r}: dies")
            low = mid
    # inject_at=s makes s the first stage executed, so a fault in stage F
    # kills exactly the injections entering at or before F. The boundary
    # stage stages[low] (dies) / stages[low+1] (survives) pins F =
    # stages[low]. The input tap itself does no processing, so low == 0
    # degenerates to the first real stage.
    faulty = stages[low] if low > 0 else stages[1]
    return LocalizationResult(
        found=True,
        stage=faulty,
        method="active-bisection",
        evidence=evidence,
        injections_used=injections,
    )


def localize(
    device: NetworkDevice, wire: bytes, ingress_port: int = 0
) -> LocalizationResult:
    """Passive first; fall back to active bisection when inconclusive."""
    result = localize_fault(device, wire, ingress_port)
    if result.found:
        return result
    active = bisect_fault(device, wire, ingress_port)
    active.injections_used += result.injections_used
    return active


# ---------------------------------------------------------------------------
# Deviation capability map: tag -> (stage, finding kinds, why)
# ---------------------------------------------------------------------------

#: For every known silent-deviation tag: the pipeline stage the deviant
#: datapath corrupts, the differential finding kinds the deviation can
#: produce against the spec oracle, and a one-line explanation. This is
#: what lets a 3-way sweep answer not just *that* a target diverged but
#: *which backend*, *where*, and *why*.
DEVIATION_CAPABILITIES: dict[str, tuple[str, tuple[str, ...], str]] = {
    REJECT_NOT_IMPLEMENTED: (
        "parser",
        ("unexpected_output",),
        "parser reject state not implemented: packets the spec kills in "
        "the parser continue through the pipeline and leak to the wire",
    ),
    TCAM_QUANTIZED: (
        "ingress",
        ("missing_output", "unexpected_output", "output_mismatch"),
        "ternary/range patterns quantized to power-of-two boundaries: "
        "installed entries match a superset of the intended traffic, so "
        "the wrong action fires (drops, leaks or rewrites the spec "
        "never asked for)",
    ),
    DEPARSE_FIELD_BUDGET_EXCEEDED: (
        "deparser",
        ("output_mismatch",),
        "headers past the deparser's field budget are silently not "
        "serialized: forwarded packets leave with bytes missing",
    ),
}


@dataclass(frozen=True)
class DeviationDiagnosis:
    """One declared deviation, localized to its stage and failure mode."""

    target: str
    tag: str
    stage: str
    finding_kinds: tuple[str, ...]
    why: str

    def __str__(self) -> str:
        return (
            f"target {self.target!r} deviates at stage {self.stage!r} "
            f"[{self.tag}]: {self.why}"
        )


def diagnose_deviations(compiled: CompiledProgram) -> list[DeviationDiagnosis]:
    """Localize every deviation a compiled artifact declares.

    The artifact's ``silent_deviations`` tags are ground truth the
    toolchain never shows users; this maps each onto the pipeline stage
    it corrupts via :data:`DEVIATION_CAPABILITIES`. Unknown tags map to
    an ``unknown`` stage rather than being dropped — a new deviant
    backend must fail loudly in sweeps until the map learns its tag.
    """
    diagnoses = []
    for tag in compiled.silent_deviations:
        stage, kinds, why = DEVIATION_CAPABILITIES.get(
            tag, ("unknown", (), f"unmapped deviation tag {tag!r}")
        )
        diagnoses.append(
            DeviationDiagnosis(
                target=compiled.target_name,
                tag=tag,
                stage=stage,
                finding_kinds=kinds,
                why=why,
            )
        )
    return diagnoses


def explain_findings(
    compiled: CompiledProgram, finding_kinds
) -> dict[str, list[DeviationDiagnosis]]:
    """Attribute observed differential finding kinds to declared deviations.

    Returns ``{finding_kind: [diagnoses that can produce it]}`` for each
    distinct kind in ``finding_kinds``; a kind no declared deviation
    explains maps to an empty list — the caller's signal that the
    divergence is a genuine fault (or an undeclared deviation), not a
    known toolchain quirk.
    """
    diagnoses = diagnose_deviations(compiled)
    return {
        kind: [d for d in diagnoses if kind in d.finding_kinds]
        for kind in dict.fromkeys(finding_kinds)
    }
