"""NetDebug test packet format.

Test packets carry a dedicated header (magic, stream id, sequence number,
injection timestamp, tap id) so the output checker can recognise them at
line rate, account for loss/reordering per stream, and compute in-device
latency. Two shapes are supported:

* **Transparent probes** — Ethernet + netdebug header + opaque payload.
  The DUT treats them as unknown-EtherType L2 frames; they exercise the
  forwarding fabric without depending on the DUT program's parse graph.
* **Carried workloads** — the probe's payload is a complete inner packet.
  The generator unwraps it at injection time so the DUT processes the
  *inner* packet; the checker correlates by injection order. This is how
  NetDebug tests a program's actual functionality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..packet.builder import netdebug_probe
from ..packet.headers import ETHERNET, ETHERTYPE_NETDEBUG, NETDEBUG
from ..packet.packet import Header, Packet

__all__ = ["PROBE_MAGIC", "ProbeInfo", "make_probe", "decode_probe", "is_probe"]

#: Magic value identifying NetDebug test packets ("ND" in ASCII).
PROBE_MAGIC = 0x4E44


@dataclass(frozen=True)
class ProbeInfo:
    """Decoded test-packet header plus the carried bytes."""

    stream_id: int
    seq_no: int
    timestamp: int
    tap_id: int
    flags: int
    inner: bytes

    @property
    def has_inner(self) -> bool:
        return len(self.inner) > 0


def make_probe(
    stream_id: int,
    seq_no: int,
    timestamp: int = 0,
    tap_id: int = 0,
    inner: Packet | bytes = b"",
) -> Packet:
    """Build a test packet; see module docstring for the two shapes."""
    if isinstance(inner, Packet):
        return netdebug_probe(
            stream_id, seq_no, timestamp=timestamp, tap_id=tap_id,
            inner=inner,
        )
    return netdebug_probe(
        stream_id, seq_no, timestamp=timestamp, tap_id=tap_id,
        payload=inner,
    )


def is_probe(wire: bytes) -> bool:
    """Cheap line-rate test: is this frame a NetDebug test packet?"""
    eth_len = ETHERNET.byte_width
    if len(wire) < eth_len + NETDEBUG.byte_width:
        return False
    ether_type = int.from_bytes(wire[12:14], "big")
    if ether_type != ETHERTYPE_NETDEBUG:
        return False
    magic = int.from_bytes(wire[eth_len : eth_len + 2], "big")
    return magic == PROBE_MAGIC


def decode_probe(wire: bytes) -> ProbeInfo | None:
    """Decode a test packet; returns None for non-probe frames."""
    if not is_probe(wire):
        return None
    eth_len = ETHERNET.byte_width
    header = Header.unpack(NETDEBUG, wire[eth_len:])
    return ProbeInfo(
        stream_id=header["stream_id"],
        seq_no=header["seq_no"],
        timestamp=header["timestamp"],
        tap_id=header["tap_id"],
        flags=header["flags"],
        inner=wire[eth_len + NETDEBUG.byte_width :],
    )
