"""Campaign-as-a-service: a persistent, multi-tenant validation fleet.

The cluster module (:mod:`repro.netdebug.cluster`) is a one-shot
launcher: one matrix in, one fleet torn down. This module promotes it
to a **long-running service** any CI in the org can call — submit →
stream → diff-gate — with the properties a shared fleet needs:

* **Many concurrent campaigns.** Each submission carries a tenant id,
  a strict-priority tier and a fair-share weight. Scheduling is
  deficit-round-robin across the active campaigns of the highest
  eligible priority tier: a campaign with weight 3 receives ~3× the
  contended dispatches of a weight-1 peer, and no campaign starves.
* **Capability-tagged placement.** Workers declare ``dim:value`` tags
  (``target:tofino``, ``engine:batch``). A shard requires its
  scenario's target and engine; per dimension a worker is eligible iff
  it declares no tag there or declares the exact value — so a worker
  pinned to one target's toolchain only ever receives that target's
  shards, and an untagged worker takes anything.
* **Work stealing + reconnect.** A slow worker's oldest in-flight
  shard is duplicated onto an idle eligible worker (first result wins,
  duplicates acked and dropped). A worker that loses its connection
  holds finished results in a ledger and reconnects under the same
  session id; the coordinator keeps its assignments alive for a grace
  window and, on resume, requeues only what the worker genuinely no
  longer holds — no dropped cells, no duplicated cells.
* **A hardened wire.** The service speaks JSON frames only — a pickle
  job frame is rejected without ever being unpickled — and, keyed from
  ``REPRO_SERVICE_SECRET``, every frame in both directions carries an
  HMAC-SHA256 tag over an implicit per-direction sequence number
  (:class:`repro.netdebug.transport.FrameAuth`), so a stray peer can
  neither execute code, nor forge jobs or results, nor replay them.

Results are **byte-identical** to a serial :func:`run_campaign` of the
same matrix: shards funnel through the same
:func:`~repro.netdebug.campaign.assemble_report` reassembly, so the
committed golden baselines and the diff kernel
(:mod:`repro.netdebug.diffing`) remain the regression verdict — and
the ``gate`` frame runs that diff server-side against a retained
report.

CLI::

    export REPRO_SERVICE_SECRET=...      # both ends, any non-empty string
    python -m repro.netdebug.service serve --listen 0.0.0.0:47816
    python -m repro.netdebug.service worker --connect host:47816 \\
        --tags target:tofino
    python -m repro.netdebug.service submit --connect host:47816 \\
        --baseline --priority 1 --weight 3 --tenant ci --out report.json
    python -m repro.netdebug.service workers --connect host:47816
    python -m repro.netdebug.service gate --connect host:47816 \\
        --campaign 1 --baseline baselines/campaign.json
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ClusterError, NetDebugError
from .campaign import (
    CampaignProgress,
    CampaignReport,
    ScenarioMatrix,
    ScenarioResult,
    _EPOCH_COUNTER,
    _require_known_engine,
    assemble_report,
    matrix_from_dict,
)
from .cluster import (
    ProgressPrinter,
    _add_matrix_args,
    _csv,
    _matrix_from_args,
    _parse_address,
    normalize_tags,
    service_worker_main,
    tags_eligible,
)
from .diffing import diff_campaigns
from .transport import SECRET_ENV, Channel, encode_job, resolve_secret, \
    stamp_cache_version

__all__ = [
    "DEFAULT_RECONNECT_GRACE_S",
    "DEFAULT_STEAL_AFTER_S",
    "DEFAULT_RETRY_BUDGET",
    "CampaignService",
    "main",
]

#: How long a disconnected worker's assignments stay alive awaiting its
#: reconnect before they are requeued on the surviving fleet.
DEFAULT_RECONNECT_GRACE_S = 5.0

#: Age at which an in-flight shard becomes stealable: an idle eligible
#: worker duplicates it rather than sitting empty behind a slow peer.
DEFAULT_STEAL_AFTER_S = 4.0

#: Requeues allowed per shard before its campaign fails.
DEFAULT_RETRY_BUDGET = 2

#: Completed campaigns retained in memory for late ``gate`` queries.
DEFAULT_KEEP_REPORTS = 32


@dataclass
class _Assignment:
    """One dispatch of one shard to one worker session."""

    aid: int
    cid: int
    job_index: int
    session: str
    dispatched_at: float


class _Campaign:
    """Coordinator-side state of one submitted campaign."""

    def __init__(
        self,
        cid: int,
        name: str,
        tenant: str,
        priority: int,
        weight: float,
        matrix: ScenarioMatrix,
        engine: str,
    ):
        self.cid = cid
        self.name = name
        self.tenant = tenant
        self.priority = priority
        self.weight = weight
        self.matrix = matrix
        self.engine = engine
        self.epoch = next(_EPOCH_COUNTER)
        self.scenarios = matrix.expand()
        self.faults = {
            label: tuple(fault_set)
            for label, fault_set in matrix.faults.items()
        }
        self.pending: deque[int] = deque(range(len(self.scenarios)))
        #: job index -> aids currently dispatched for it (>1 = stolen).
        self.inflight: dict[int, set[int]] = {}
        self.results: dict[int, ScenarioResult] = {}
        self.attempts: dict[int, int] = {}
        #: Deficit-round-robin credit (1 credit = 1 shard dispatch).
        self.credit = 0.0
        #: Dispatches made while at least one other campaign was also
        #: placeable — the denominator fairness is measured over.
        self.contended = 0
        self.dispatched = 0
        self.requeues = 0
        self.failed_error: str | None = None
        self.subscribers: list[Channel] = []

    @property
    def total(self) -> int:
        return len(self.scenarios)

    @property
    def done(self) -> bool:
        return (
            self.failed_error is not None
            or len(self.results) == self.total
        )

    def required_tags(self, job_index: int) -> tuple[str, str]:
        scenario = self.scenarios[job_index]
        return (f"target:{scenario.target}", f"engine:{self.engine}")

    def job_frame(self, aid: int, job_index: int) -> dict:
        scenario = self.scenarios[job_index]
        return stamp_cache_version(
            {
                "type": "job",
                "assignment": aid,
                "campaign": self.cid,
                "id": job_index,
                "fn": "run",
                "job": encode_job(
                    self.epoch,
                    scenario,
                    self.faults[scenario.fault],
                    engine=self.engine,
                ),
            }
        )

    def progress(self) -> dict:
        failed = sum(
            1 for result in self.results.values() if not result.passed
        )
        return {
            "completed": len(self.results),
            "total": self.total,
            "failed": failed,
        }

    def describe(self) -> dict:
        return {
            "campaign": self.cid,
            "name": self.name,
            "tenant": self.tenant,
            "priority": self.priority,
            "weight": self.weight,
            "completed": len(self.results),
            "total": self.total,
            "pending": len(self.pending),
            "inflight": sum(len(v) for v in self.inflight.values()),
            "dispatched": self.dispatched,
            "contended": self.contended,
            "requeues": self.requeues,
        }


class _FleetWorker:
    """Coordinator-side record of one service worker session."""

    def __init__(
        self,
        session: str,
        name: str,
        channel: Channel,
        slots: int,
        tags: tuple[str, ...],
    ):
        self.session = session
        self.name = name
        self.channel = channel
        self.slots = slots
        self.tags = tags
        self.outstanding: dict[int, _Assignment] = {}
        self.completed = 0
        self.lost_at: float | None = None

    @property
    def free_slots(self) -> int:
        return self.slots - len(self.outstanding)

    def describe(self, alive: bool) -> dict:
        return {
            "session": self.session,
            "name": self.name,
            "alive": alive,
            "slots": self.slots,
            "tags": list(self.tags),
            "outstanding": len(self.outstanding),
            "completed": self.completed,
        }


class CampaignService:
    """The long-running coordinator daemon.

    One instance owns the listener, the worker fleet, and every active
    campaign. ``secret=None`` runs unauthenticated (tests, localhost);
    anything else enables HMAC frame authentication on every
    connection. All mutable state is guarded by one condition
    variable; a scheduler thread fills worker slots, expires
    reconnect graces and ages steals.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: str | bytes | None = None,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        reconnect_grace_s: float = DEFAULT_RECONNECT_GRACE_S,
        steal_after_s: float = DEFAULT_STEAL_AFTER_S,
        keep_reports: int = DEFAULT_KEEP_REPORTS,
    ):
        self.secret = resolve_secret(secret) if secret is not None else None
        self.retry_budget = retry_budget
        self.reconnect_grace_s = reconnect_grace_s
        self.steal_after_s = steal_after_s
        self.keep_reports = keep_reports
        self._listener = socket.create_server((host, port))
        self._cond = threading.Condition()
        self._campaigns: dict[int, _Campaign] = {}
        self._workers: dict[str, _FleetWorker] = {}
        self._lost: dict[str, _FleetWorker] = {}
        self._assignments: dict[int, _Assignment] = {}
        #: cid -> {"report": CampaignReport, "meta": {...}, ...}.
        self._completed: OrderedDict[int, dict] = OrderedDict()
        self._next_cid = 1
        self._next_aid = 1
        self._rr_last = 0
        self._closing = False
        self._threads: list[threading.Thread] = []
        #: Campaigns ever accepted / completed (observability + tests).
        self.campaigns_seen = 0
        self.steals = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return host, port

    def start(self) -> "CampaignService":
        for target, name in (
            (self._accept_loop, "service-accept"),
            (self._scheduler_loop, "service-scheduler"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def serve_forever(self) -> None:
        self.start()
        with self._cond:
            while not self._closing:
                self._cond.wait(timeout=1.0)

    def close(self) -> None:
        with self._cond:
            self._closing = True
            workers = list(self._workers.values()) + list(
                self._lost.values()
            )
            subscribers = [
                channel
                for campaign in self._campaigns.values()
                for channel in campaign.subscribers
            ]
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        for worker in workers:
            try:
                worker.channel.send({"type": "shutdown"})
            except (OSError, ClusterError):
                pass
            worker.channel.close()
        for channel in subscribers:
            channel.close()

    # -- connection intake ----------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"service-conn-{peer[1]}",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket, name: str) -> None:
        channel = Channel(conn, secret=self.secret)
        # Pre-handshake the peer is untrusted: JSON frames only (a
        # pickle frame is rejected by kind byte, never unpickled), a
        # bounded wait, and — with a secret — a valid HMAC tag before
        # the first byte of body is even parsed.
        conn.settimeout(10.0)
        try:
            first = channel.recv(json_only=True)
        except (ClusterError, OSError):
            channel.close()
            return
        if first is None:
            channel.close()
            return
        conn.settimeout(None)
        kind = first.get("type")
        try:
            if kind == "hello" and first.get("mode") == "service":
                self._serve_worker(channel, name, first)
            elif kind == "submit":
                self._serve_client(channel, first)
            elif kind == "workers":
                channel.send(
                    {"type": "workers", "workers": self.worker_listing()}
                )
            elif kind == "status":
                channel.send(
                    {"type": "status", "campaigns": self.campaign_listing()}
                )
            elif kind == "gate":
                self._handle_gate(channel, first)
            elif kind == "stop":
                channel.send({"type": "ok"})
                with self._cond:
                    self._closing = True
                    self._cond.notify_all()
            else:
                channel.send(
                    {
                        "type": "rejected",
                        "error": f"unknown request type {kind!r}",
                    }
                )
        except (OSError, ClusterError):
            pass
        finally:
            channel.close()

    # -- worker protocol -------------------------------------------------

    def _serve_worker(
        self, channel: Channel, name: str, hello: dict
    ) -> None:
        session = str(hello.get("session") or "")
        if not session:
            channel.send(
                {"type": "rejected", "error": "hello carries no session id"}
            )
            return
        tags = normalize_tags(hello.get("tags", ()))
        worker = _FleetWorker(
            session=session,
            name=name,
            channel=channel,
            slots=max(1, int(hello.get("slots", 1))),
            tags=tags,
        )
        done = {int(aid) for aid in hello.get("done", [])}
        holding = {int(aid) for aid in hello.get("holding", [])}
        with self._cond:
            stale = self._lost.pop(session, None) or self._workers.pop(
                session, None
            )
            if stale is not None:
                worker.completed = stale.completed
                stale.channel.close()
            want: list[int] = []
            ack: list[int] = []
            for aid in sorted(done):
                assignment = self._assignments.get(aid)
                if (
                    assignment is not None
                    and assignment.session == session
                    and not self._job_complete(assignment)
                ):
                    worker.outstanding[aid] = assignment
                    want.append(aid)
                else:
                    ack.append(aid)
            for aid in sorted(holding):
                assignment = self._assignments.get(aid)
                if assignment is not None and assignment.session == session:
                    worker.outstanding[aid] = assignment
            # Whatever this session was assigned but neither finished
            # nor still holds was truly lost mid-drop: requeue it now.
            for assignment in [
                a
                for a in self._assignments.values()
                if a.session == session
                and a.aid not in done
                and a.aid not in holding
            ]:
                self._retire_assignment_locked(assignment, requeue=True)
            self._workers[session] = worker
            worker.channel.send(
                {
                    "type": "welcome",
                    "session": session,
                    "want": want,
                    "ack": ack,
                }
            )
            self._cond.notify_all()
        self._worker_recv_loop(worker)

    def _worker_recv_loop(self, worker: _FleetWorker) -> None:
        while True:
            try:
                message = worker.channel.recv(json_only=True)
            except (OSError, ClusterError):
                message = None
            if message is None:
                break
            kind = message.get("type")
            if kind in ("result", "error"):
                self._ingest_worker_reply(worker, message)
            else:
                # A foreign worker build speaking garbage: drop the
                # connection; its shards requeue via the grace path.
                break
        self._worker_lost(worker)

    def _ingest_worker_reply(
        self, worker: _FleetWorker, message: dict
    ) -> None:
        aid = message.get("assignment")
        with self._cond:
            # Always ack so the worker's ledger drains — even for a
            # duplicate (stolen elsewhere, finished twice) or a stale
            # assignment from before a requeue.
            try:
                worker.channel.send(
                    {"type": "ack", "assignments": [aid]}
                )
            except (OSError, ClusterError):
                pass
            assignment = self._assignments.get(aid)
            if assignment is None:
                return
            campaign = self._campaigns.get(assignment.cid)
            worker.outstanding.pop(aid, None)
            worker.completed += 1
            if campaign is None or campaign.done:
                self._assignments.pop(aid, None)
                self._cond.notify_all()
                return
            job_index = assignment.job_index
            if message.get("type") == "error":
                self._assignments.pop(aid, None)
                campaign.inflight.get(job_index, set()).discard(aid)
                # A shard raising is deterministic — requeueing cannot
                # help; fail the campaign with the remote traceback.
                self._fail_campaign_locked(
                    campaign,
                    f"worker {worker.name} failed shard {job_index} "
                    f"({campaign.scenarios[job_index].key}):\n"
                    f"{message.get('error')}",
                )
                self._cond.notify_all()
                return
            # Retire EVERY assignment of this job (steals included):
            # first result wins, later duplicates hit the
            # assignment-is-gone guard above and are ack-dropped.
            for dup in campaign.inflight.pop(job_index, {aid}):
                retired = self._assignments.pop(dup, None)
                if retired is not None and dup != aid:
                    holder = self._workers.get(
                        retired.session
                    ) or self._lost.get(retired.session)
                    if holder is not None:
                        holder.outstanding.pop(dup, None)
            if job_index not in campaign.results:
                try:
                    result = ScenarioResult.from_dict(message["result"])
                except (KeyError, TypeError, ValueError,
                        NetDebugError) as exc:
                    self._fail_campaign_locked(
                        campaign,
                        f"worker {worker.name} sent an undecodable "
                        f"result for shard {job_index}: {exc!r}",
                    )
                    self._cond.notify_all()
                    return
                # cache_stats rides the frame as a sidecar (it is
                # deliberately not part of the golden to_dict bytes);
                # restoring it keeps meta["compile_cache"] meaningful.
                stats = message.get("cache_stats")
                if stats:
                    result.cache_stats = {
                        str(k): int(v) for k, v in stats.items()
                    }
                campaign.results[job_index] = result
                self._push_result_locked(campaign, result)
                if campaign.done:
                    self._complete_campaign_locked(campaign)
            self._cond.notify_all()

    def _worker_lost(self, worker: _FleetWorker) -> None:
        with self._cond:
            current = self._workers.get(worker.session)
            if current is not worker:
                return  # replaced by a reconnect already
            del self._workers[worker.session]
            worker.lost_at = time.monotonic()
            self._lost[worker.session] = worker
            self._cond.notify_all()
        worker.channel.close()

    # -- campaign bookkeeping (call with the lock held) ------------------

    def _job_complete(self, assignment: _Assignment) -> bool:
        campaign = self._campaigns.get(assignment.cid)
        if campaign is None:
            return True
        return assignment.job_index in campaign.results

    def _retire_assignment_locked(
        self, assignment: _Assignment, requeue: bool
    ) -> None:
        """Drop one assignment; optionally requeue its job if that was
        the last copy in flight and the job is still unfinished."""
        self._assignments.pop(assignment.aid, None)
        holder = self._workers.get(assignment.session) or self._lost.get(
            assignment.session
        )
        if holder is not None:
            holder.outstanding.pop(assignment.aid, None)
        campaign = self._campaigns.get(assignment.cid)
        if campaign is None or campaign.done:
            return
        job_index = assignment.job_index
        copies = campaign.inflight.get(job_index)
        if copies is not None:
            copies.discard(assignment.aid)
            if not copies:
                del campaign.inflight[job_index]
        if (
            requeue
            and job_index not in campaign.results
            and job_index not in campaign.inflight
            and job_index not in campaign.pending
        ):
            attempts = campaign.attempts.get(job_index, 0)
            if attempts > self.retry_budget:
                self._fail_campaign_locked(
                    campaign,
                    f"shard {job_index} "
                    f"({campaign.scenarios[job_index].key}) was lost to "
                    f"worker failures {attempts} times; retry budget of "
                    f"{self.retry_budget} exhausted",
                )
            else:
                campaign.pending.appendleft(job_index)
                campaign.requeues += 1

    def _push_result_locked(
        self, campaign: _Campaign, result: ScenarioResult
    ) -> None:
        frame = {
            "type": "result",
            "campaign": campaign.cid,
            "index": result.scenario.index,
            "key": result.scenario.key,
            "result": result.to_dict(),
            "progress": campaign.progress(),
        }
        self._push_frame_locked(campaign, frame)

    def _push_frame_locked(self, campaign: _Campaign, frame: dict) -> None:
        for channel in list(campaign.subscribers):
            try:
                channel.send(frame)
            except (OSError, ClusterError):
                campaign.subscribers.remove(channel)

    def _complete_campaign_locked(self, campaign: _Campaign) -> None:
        results = [
            campaign.results[index] for index in range(campaign.total)
        ]
        report = assemble_report(
            campaign.name, results, expected=campaign.total
        )
        meta = dict(report.meta)
        meta["service"] = {
            "campaign": campaign.cid,
            "tenant": campaign.tenant,
            "priority": campaign.priority,
            "weight": campaign.weight,
            "dispatched": campaign.dispatched,
            "contended": campaign.contended,
            "requeues": campaign.requeues,
        }
        record = {
            "campaign": campaign.cid,
            "name": campaign.name,
            "tenant": campaign.tenant,
            "report": report,
            "meta": meta,
        }
        self._completed[campaign.cid] = record
        while len(self._completed) > self.keep_reports:
            self._completed.popitem(last=False)
        self._push_frame_locked(
            campaign,
            {
                "type": "complete",
                "campaign": campaign.cid,
                "report": report.to_dict(),
                "meta": meta,
            },
        )
        del self._campaigns[campaign.cid]

    def _fail_campaign_locked(
        self, campaign: _Campaign, error: str
    ) -> None:
        if campaign.failed_error is not None:
            return
        campaign.failed_error = error
        for job_index in list(campaign.inflight):
            for aid in campaign.inflight.pop(job_index, set()):
                assignment = self._assignments.pop(aid, None)
                if assignment is not None:
                    holder = self._workers.get(
                        assignment.session
                    ) or self._lost.get(assignment.session)
                    if holder is not None:
                        holder.outstanding.pop(aid, None)
        campaign.pending.clear()
        self._push_frame_locked(
            campaign,
            {
                "type": "failed",
                "campaign": campaign.cid,
                "error": error,
            },
        )
        del self._campaigns[campaign.cid]

    # -- scheduler --------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                if self._closing:
                    return
                self._expire_lost_locked()
                self._fill_slots_locked()
                self._check_stranded_locked()
                self._cond.wait(timeout=0.2)

    def _expire_lost_locked(self) -> None:
        now = time.monotonic()
        for session in list(self._lost):
            worker = self._lost[session]
            if now - (worker.lost_at or now) < self.reconnect_grace_s:
                continue
            del self._lost[session]
            for assignment in list(worker.outstanding.values()):
                self._retire_assignment_locked(assignment, requeue=True)

    def _fill_slots_locked(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for worker in list(self._workers.values()):
                if worker.free_slots <= 0:
                    continue
                pick = self._pick_job_locked(worker)
                stolen = False
                if pick is None:
                    pick = self._pick_steal_locked(worker)
                    stolen = pick is not None
                if pick is None:
                    continue
                campaign, job_index = pick
                self._dispatch_locked(
                    worker, campaign, job_index, stolen=stolen
                )
                progressed = True

    def _placeable_locked(
        self, campaign: _Campaign, worker: _FleetWorker
    ) -> int | None:
        """First pending job of ``campaign`` this worker may run."""
        for job_index in campaign.pending:
            if tags_eligible(
                worker.tags, campaign.required_tags(job_index)
            ):
                return job_index
        return None

    def _pick_job_locked(
        self, worker: _FleetWorker
    ) -> tuple[_Campaign, int] | None:
        """Strict-priority tiers, deficit-round-robin within the tier.

        Candidates are the campaigns with a pending shard this worker's
        tags allow; of those only the highest priority tier competes.
        Each campaign spends 1 credit per dispatch and replenishes by
        its weight when the tier runs dry, so contended dispatch shares
        converge to the weight ratio. Bookkeeping (credit, rotation) is
        only touched under contention — a lone campaign must not bank
        unbounded credit for later.
        """
        candidates: list[tuple[_Campaign, int]] = []
        for campaign in self._campaigns.values():
            if campaign.done:
                continue
            job_index = self._placeable_locked(campaign, worker)
            if job_index is not None:
                candidates.append((campaign, job_index))
        if not candidates:
            return None
        if len(candidates) == 1:
            campaign, job_index = candidates[0]
            return campaign, job_index
        tier = max(campaign.priority for campaign, _ in candidates)
        contenders = sorted(
            (
                (campaign, job_index)
                for campaign, job_index in candidates
                if campaign.priority == tier
            ),
            key=lambda pair: pair[0].cid,
        )
        if len(contenders) == 1:
            return contenders[0]
        # Rotate so the scan starts after the last served campaign.
        start = 0
        for position, (campaign, _) in enumerate(contenders):
            if campaign.cid > self._rr_last:
                start = position
                break
        rotation = contenders[start:] + contenders[:start]
        # Replenish rounds are bounded: each adds >= the smallest
        # weight, so some contender reaches a full credit within
        # ceil(1 / min_weight) rounds.
        min_weight = min(c.weight for c, _ in rotation)
        for _ in range(int(1 / min_weight) + 2):
            for campaign, job_index in rotation:
                if campaign.credit >= 1.0:
                    return campaign, job_index
            for campaign, _ in rotation:
                campaign.credit = min(
                    campaign.credit + campaign.weight,
                    max(1.0, campaign.weight) * 2.0,
                )
        return rotation[0]  # unreachable fallback

    def _pick_steal_locked(
        self, worker: _FleetWorker
    ) -> tuple[_Campaign, int] | None:
        """Oldest sufficiently-aged in-flight shard this idle worker
        could duplicate (no second copy yet, not its own work)."""
        now = time.monotonic()
        best: tuple[float, _Campaign, int] | None = None
        for assignment in self._assignments.values():
            age = now - assignment.dispatched_at
            if age < self.steal_after_s:
                continue
            if assignment.session == worker.session:
                continue
            campaign = self._campaigns.get(assignment.cid)
            if campaign is None or campaign.done:
                continue
            copies = campaign.inflight.get(assignment.job_index, set())
            if len(copies) != 1:
                continue  # already duplicated (or being retired)
            if not tags_eligible(
                worker.tags, campaign.required_tags(assignment.job_index)
            ):
                continue
            if best is None or assignment.dispatched_at < best[0]:
                best = (
                    assignment.dispatched_at,
                    campaign,
                    assignment.job_index,
                )
        if best is None:
            return None
        return best[1], best[2]

    def _dispatch_locked(
        self,
        worker: _FleetWorker,
        campaign: _Campaign,
        job_index: int,
        stolen: bool = False,
    ) -> None:
        aid = self._next_aid
        self._next_aid += 1
        assignment = _Assignment(
            aid=aid,
            cid=campaign.cid,
            job_index=job_index,
            session=worker.session,
            dispatched_at=time.monotonic(),
        )
        if stolen:
            self.steals += 1
        else:
            campaign.pending.remove(job_index)
            # Contention = another campaign also had placeable work at
            # this instant; fairness shares are measured over these.
            others = any(
                other is not campaign
                and not other.done
                and self._placeable_locked(other, worker) is not None
                for other in self._campaigns.values()
            )
            if others:
                campaign.contended += 1
                campaign.credit = max(0.0, campaign.credit - 1.0)
                self._rr_last = campaign.cid
        campaign.dispatched += 1
        campaign.attempts[job_index] = (
            campaign.attempts.get(job_index, 0) + 1
        )
        campaign.inflight.setdefault(job_index, set()).add(aid)
        self._assignments[aid] = assignment
        worker.outstanding[aid] = assignment
        try:
            worker.channel.send(campaign.job_frame(aid, job_index))
        except (OSError, ClusterError):
            # The recv loop will notice the dead socket too; retiring
            # here keeps the shard from waiting out the full grace.
            self._retire_assignment_locked(assignment, requeue=True)

    def _check_stranded_locked(self) -> None:
        """Fail campaigns no worker on the fleet could ever place.

        Only with a non-empty fleet: an empty fleet means workers are
        still joining, and campaigns legitimately wait for them.
        """
        fleet = list(self._workers.values()) + list(self._lost.values())
        if not fleet:
            return
        for campaign in list(self._campaigns.values()):
            if campaign.done or not campaign.pending:
                continue
            if campaign.inflight:
                continue
            for job_index in campaign.pending:
                required = campaign.required_tags(job_index)
                if not any(
                    tags_eligible(worker.tags, required)
                    for worker in fleet
                ):
                    self._fail_campaign_locked(
                        campaign,
                        f"shard {job_index} "
                        f"({campaign.scenarios[job_index].key}) requires "
                        f"capabilities {list(required)} but no connected "
                        "worker declares them; tag a worker or widen the "
                        "fleet",
                    )
                    break

    # -- client protocol --------------------------------------------------

    def _serve_client(self, channel: Channel, message: dict) -> None:
        try:
            campaign = self._build_campaign(message)
        except (NetDebugError, ClusterError, KeyError, TypeError,
                ValueError) as exc:
            channel.send({"type": "rejected", "error": str(exc)})
            return
        with self._cond:
            if self._closing:
                channel.send(
                    {"type": "rejected", "error": "service is shutting down"}
                )
                return
            self._campaigns[campaign.cid] = campaign
            campaign.subscribers.append(channel)
            self.campaigns_seen += 1
            # Under the lock: result pushes also hold it, so the
            # accepted frame is on the wire before any result frame.
            channel.send(
                {
                    "type": "accepted",
                    "campaign": campaign.cid,
                    "name": campaign.name,
                    "total": campaign.total,
                }
            )
            self._cond.notify_all()
        # Keep serving this connection: gate requests after completion,
        # EOF when the client goes away.
        while True:
            try:
                follow_up = channel.recv(json_only=True)
            except (OSError, ClusterError):
                follow_up = None
            if follow_up is None:
                break
            if follow_up.get("type") == "gate":
                follow_up.setdefault("campaign", campaign.cid)
                self._handle_gate(channel, follow_up)
            else:
                channel.send(
                    {
                        "type": "rejected",
                        "error": "only gate requests are accepted on a "
                        "campaign connection",
                    }
                )
        with self._cond:
            if channel in campaign.subscribers:
                campaign.subscribers.remove(channel)

    def _build_campaign(self, message: dict) -> _Campaign:
        matrix = matrix_from_dict(message["matrix"])
        engine = str(message.get("engine", "closure"))
        _require_known_engine(engine)
        priority = int(message.get("priority", 0))
        weight = float(message.get("weight", 1.0))
        if not 0 < weight <= 1000:
            raise NetDebugError(
                f"campaign weight must be in (0, 1000], got {weight!r}"
            )
        with self._cond:
            cid = self._next_cid
            self._next_cid += 1
        campaign = _Campaign(
            cid=cid,
            name=str(message.get("name", "campaign")),
            tenant=str(message.get("tenant", "default")),
            priority=priority,
            weight=weight,
            matrix=matrix,
            engine=engine,
        )
        if campaign.total == 0:
            raise NetDebugError("campaign matrix expands to zero cells")
        return campaign

    def _handle_gate(self, channel: Channel, message: dict) -> None:
        cid = message.get("campaign")
        with self._cond:
            record = self._completed.get(cid)
        if record is None:
            channel.send(
                {
                    "type": "rejected",
                    "error": f"no completed campaign {cid!r} is retained "
                    "on this service",
                }
            )
            return
        try:
            baseline = CampaignReport.from_dict(message["baseline"])
        except (KeyError, TypeError, ValueError, NetDebugError) as exc:
            channel.send(
                {
                    "type": "rejected",
                    "error": f"undecodable baseline report: {exc!r}",
                }
            )
            return
        report: CampaignReport = record["report"]
        diff = diff_campaigns(baseline, report)
        channel.send(
            {
                "type": "gated",
                "campaign": cid,
                "regression": diff.is_regression,
                "identical": baseline.to_json() == report.to_json(),
                "summary": diff.summary(),
            }
        )

    # -- listings ----------------------------------------------------------

    def worker_listing(self) -> list[dict]:
        with self._cond:
            listing = [
                worker.describe(alive=True)
                for worker in self._workers.values()
            ]
            listing += [
                worker.describe(alive=False)
                for worker in self._lost.values()
            ]
        return sorted(listing, key=lambda w: w["session"])

    def campaign_listing(self) -> list[dict]:
        with self._cond:
            active = [
                campaign.describe()
                for campaign in self._campaigns.values()
            ]
            finished = [
                {
                    "campaign": record["campaign"],
                    "name": record["name"],
                    "tenant": record["tenant"],
                    "completed": record["report"].scenarios,
                    "total": record["report"].scenarios,
                    **{
                        key: record["meta"]["service"][key]
                        for key in ("priority", "weight", "dispatched",
                                    "contended", "requeues")
                    },
                }
                for record in self._completed.values()
            ]
        return sorted(active + finished, key=lambda c: c["campaign"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _require_cli_secret(args) -> bytes | None:
    secret = resolve_secret(None)
    if secret is None and not getattr(args, "insecure", False):
        raise ClusterError(
            f"no frame-authentication secret: export {SECRET_ENV} "
            "(any non-empty string, same on every end) or pass "
            "--insecure to run unauthenticated"
        )
    return secret


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netdebug.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def _common(sub, connect=True):
        if connect:
            sub.add_argument("--connect", required=True, help="HOST:PORT")
        sub.add_argument(
            "--insecure", action="store_true",
            help=f"allow running without {SECRET_ENV}",
        )

    serve = commands.add_parser(
        "serve", help="run the campaign-service daemon"
    )
    serve.add_argument("--listen", default="127.0.0.1:47816",
                       help="HOST:PORT to bind")
    serve.add_argument("--retry-budget", type=int,
                       default=DEFAULT_RETRY_BUDGET)
    serve.add_argument("--grace", type=float,
                       default=DEFAULT_RECONNECT_GRACE_S,
                       help="seconds a dropped worker may reconnect "
                            "before its shards requeue")
    serve.add_argument("--steal-after", type=float,
                       default=DEFAULT_STEAL_AFTER_S,
                       help="seconds before an in-flight shard becomes "
                            "stealable by an idle worker")
    _common(serve, connect=False)

    worker = commands.add_parser(
        "worker", help="run one persistent service worker"
    )
    _common(worker)
    worker.add_argument("--slots", type=int, default=1,
                        help="shards pipelined to this worker")
    worker.add_argument("--tags", default="",
                        help="comma-separated capability tags, "
                             "e.g. target:tofino,engine:batch")
    worker.add_argument("--crash-after", type=int, default=None,
                        help="chaos: hard-exit after this many shards")
    worker.add_argument("--drop-after", type=int, default=None,
                        help="chaos: drop the connection (and "
                             "reconnect) after this many shards")

    submit = commands.add_parser(
        "submit", help="submit a campaign and stream its results"
    )
    _common(submit)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0,
                        help="strict-priority tier (higher runs first)")
    submit.add_argument("--weight", type=float, default=1.0,
                        help="fair-share weight within the tier")
    submit.add_argument("--gate-baseline", default="",
                        help="after completion, diff-gate against this "
                             "baseline report server-side; exit 3 on "
                             "regression")
    _add_matrix_args(submit)

    workers = commands.add_parser(
        "workers", help="list the connected worker fleet"
    )
    _common(workers)

    gate = commands.add_parser(
        "gate", help="diff-gate a retained campaign against a baseline"
    )
    _common(gate)
    gate.add_argument("--campaign", type=int, required=True)
    gate.add_argument("--baseline", required=True,
                      help="path to the golden baseline report JSON")

    args = parser.parse_args(argv)
    from .client import ServiceClient  # deferred: client imports us not

    try:
        secret = _require_cli_secret(args)
        if args.command == "serve":
            host, port = _parse_address(args.listen)
            service = CampaignService(
                host=host,
                port=port,
                secret=secret,
                retry_budget=args.retry_budget,
                reconnect_grace_s=args.grace,
                steal_after_s=args.steal_after,
            )
            bound = service.address
            print(
                f"campaign service listening on {bound[0]}:{bound[1]} "
                f"({'HMAC-authenticated' if secret else 'INSECURE'})",
                flush=True,
            )
            try:
                service.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                service.close()
            return 0
        if args.command == "worker":
            service_worker_main(
                _parse_address(args.connect),
                slots=args.slots,
                tags=_csv(args.tags),
                secret=secret,
                crash_after=args.crash_after,
                drop_after=args.drop_after,
            )
            return 0
        client = ServiceClient(
            _parse_address(args.connect), secret=secret
        )
        if args.command == "workers":
            for entry in client.workers():
                state = "up" if entry["alive"] else "reconnecting"
                tags = ",".join(entry["tags"]) or "-"
                print(
                    f"{entry['session']}  {entry['name']:<21} {state:<12} "
                    f"slots={entry['slots']} tags={tags} "
                    f"outstanding={entry['outstanding']} "
                    f"completed={entry['completed']}"
                )
            return 0
        if args.command == "gate":
            baseline = CampaignReport.from_dict(
                json.loads(Path(args.baseline).read_text())
            )
            verdict = client.gate(args.campaign, baseline)
            print(verdict["summary"])
            if verdict["identical"]:
                print("reports are byte-identical")
            return 3 if verdict["regression"] else 0
        # submit
        matrix, name = _matrix_from_args(args)
        handle = client.submit(
            matrix,
            name=name,
            tenant=args.tenant,
            priority=args.priority,
            weight=args.weight,
            engine=args.engine,
        )
        print(f"campaign {handle.campaign} accepted "
              f"({handle.total} scenarios)", flush=True)
        report = handle.stream(
            on_result=None if args.quiet else ProgressPrinter()
        )
        print(report.summary())
        if args.out:
            out = Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            report.save(out)
            print(f"report written to {out}")
        if args.gate_baseline:
            baseline = CampaignReport.from_dict(
                json.loads(Path(args.gate_baseline).read_text())
            )
            verdict = handle.gate(baseline)
            print(verdict["summary"])
            if verdict["identical"]:
                print("reports are byte-identical")
            if verdict["regression"]:
                return 3
        return 0
    except (ClusterError, NetDebugError) as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
