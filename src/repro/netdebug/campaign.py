"""Parallel validation campaigns: swept scenario matrices over workers.

The paper's workflow is running *many* validation sessions against live
targets to flush out data-plane bugs like the missing parser ``reject``
state. A :class:`ScenarioMatrix` declares that workflow as data — the
cross product of stdlib programs, targets
(``reference``/``sdnet``/``tofino``), injected hardware fault sets
(:mod:`repro.target.faults`) and named
workloads (:data:`repro.sim.traffic.WORKLOADS`) — and
:func:`run_campaign` expands it into independent
:class:`~repro.netdebug.session.ValidationSession` shards executed
across a :mod:`multiprocessing` worker pool.

Three properties the engine guarantees:

* **Compile once per worker.** Each worker process caches one compiled
  fast-path artifact per (program, target, setup) key and stamps out a
  fresh :class:`~repro.target.device.NetworkDevice`
  (fresh runtime state, stats, clock, fault set) per shard via
  :meth:`~repro.target.device.NetworkDevice.install`.
* **Determinism.** Every shard derives all randomness from the matrix
  seed and the scenario index, and results are ordered by scenario
  index — the same matrix produces a byte-identical
  :class:`CampaignReport` (:meth:`CampaignReport.to_json`) whether run
  serially or on N workers.
* **Record/replay.** A campaign can be frozen to the existing
  regression-artifact format — one
  :class:`~repro.netdebug.regression.RegressionSuite` (pcap +
  expectation JSON) per scenario plus a manifest — and replayed later
  on any build with :func:`replay_campaign`.
"""

from __future__ import annotations

import itertools
import json
import math
import multiprocessing
import os
import statistics
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable

from ..bitutils import stable_hash64
from ..exceptions import NetDebugError, UnknownTargetError
from ..p4.stdlib import PROGRAMS
from ..p4.program import P4Program
from ..packet.headers import mac
from ..sim.traffic import (
    WORKLOADS,
    WorkloadContext,
    build_workload,
    default_flow,
)
from ..target import artifact_cache
from ..target.compiler import CompiledProgram
from ..target.device import ENGINES, NetworkDevice
from ..target.faults import Fault, FaultKind
from ..target.pipeline import PacketSnapshot
from ..target.reference import make_reference_device
from ..target.sdnet import make_sdnet_device
from ..target.tofino import make_tofino_device
from .checker import CheckRule, LatencyCheck
from .generator import StreamSpec
from .regression import RegressionSuite, replay_suite
from .report import (
    Capability,
    CanonicalJsonReport,
    CheckOutcome,
    Finding,
    LatencyStats,
    SessionReport,
)
from .oracle import ORACLES, OracleFactory, require_known_oracle
from .session import ValidationSession, run_session

__all__ = [
    "TARGETS",
    "PROVISIONERS",
    "require_known_target",
    "require_known_program",
    "scenario_key",
    "scenario_to_dict",
    "scenario_from_dict",
    "fault_to_dict",
    "fault_from_dict",
    "matrix_to_dict",
    "matrix_from_dict",
    "provision_acl_gate",
    "provision_stateful_firewall",
    "provision_int_telemetry",
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "CampaignProgress",
    "CampaignReport",
    "ShardExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "assemble_report",
    "run_campaign",
    "record_campaign",
    "replay_campaign",
]

#: Device factories a matrix may name in ``targets``.
TARGETS: dict[str, Callable[[str], NetworkDevice]] = {
    "reference": make_reference_device,
    "sdnet": make_sdnet_device,
    "tofino": make_tofino_device,
}


def require_known_target(target: str, where: str) -> None:
    """Raise :class:`UnknownTargetError` unless ``target`` is registered.

    The single choke point for every ``TARGETS``-unknown error path
    (matrix validation, manifest replay): one exception type, and the
    message always carries the registered-target list.
    """
    if target not in TARGETS:
        known = ", ".join(sorted(TARGETS))
        raise UnknownTargetError(
            f"{where} references unknown target {target!r}; "
            f"known targets: {known}"
        )


def require_known_program(program: str, where: str) -> None:
    """Raise :class:`NetDebugError` unless ``program`` is in the stdlib.

    The program-axis counterpart of :func:`require_known_target`, shared
    by matrix validation, manifest replay and the differential runner.
    """
    if program not in PROGRAMS:
        known = ", ".join(sorted(PROGRAMS))
        raise NetDebugError(
            f"{where} references unknown program {program!r}; "
            f"stdlib offers: {known}"
        )

def scenario_key(
    program: str, target: str, fault: str, workload: str
) -> str:
    """The stable scenario identity — the ONE definition shared by
    :attr:`Scenario.key`, seed derivation and the cross-version differ,
    so they cannot drift apart (a drift would silently shift every
    scenario seed and break the committed golden baselines)."""
    return f"{program}/{target}/{fault}/{workload}"


def provision_acl_gate(device: NetworkDevice) -> None:
    """Built-in ``acl_firewall`` setup for 3-way differential sweeps.

    Forwards the campaign workloads' destination MAC out port 2 and
    installs one ternary ACL deny whose mask (``0x00FF`` over the L4
    destination port) has no leading care-bit run. Spec semantics deny
    almost nothing; a TCAM that quantizes masks to power-of-two
    boundaries (:mod:`repro.target.tofino`) degrades the mask to
    match-anything and silently denies *all* IPv4 traffic — which is
    exactly the deviation a (program × target) sweep should surface.

    Program-aware so mixed-program matrices can name it as ``setup``:
    devices running anything but ``acl_firewall`` are left untouched.
    """
    if device.program.name != "acl_firewall":
        return
    control = device.control_plane
    control.table_add("fwd", "forward", [mac("02:00:00:00:00:02")], [2])
    control.table_add(
        "acl",
        "deny",
        [(0, 0), (0, 0), (0, 0), (0, 0), (0x00FF, 0x00FF)],
        [],
        priority=10,
    )


def provision_stateful_firewall(device: NetworkDevice) -> None:
    """Campaign setup for ``stateful_firewall`` sweeps.

    Deliberately installs nothing, for every program: the firewall's
    flow table lives entirely in data-plane registers, and register
    state is *per device* (reset by every
    :meth:`NetworkDevice.install`) while provisioners run once per
    cached artifact — so pre-opening flow slots here would apply to
    the first shard's device only and break the engine's shard-order
    independence. Campaign traffic enters on the inside port and opens
    its own slots in-band. The entry exists so mixed stdlib_ext
    matrices can name a validated ``setup``.
    """


def provision_int_telemetry(device: NetworkDevice) -> None:
    """Campaign setup for ``int_telemetry`` sweeps.

    The telemetry program is table-free (fixed collector port, INT
    stamp in egress), so there is no control-plane state to install;
    like :func:`provision_stateful_firewall` this is a documented
    registry entry, not a behaviour hook.
    """


#: Named control-plane provisioners (table entries etc.), applied ONCE
#: per cached artifact — entries land on the shared program object, so
#: provisioning must be install-once/read-many. Register module-level
#: callables only (workers must be able to pickle scenario references
#: to them by name).
PROVISIONERS: dict[str, Callable[[NetworkDevice], None]] = {
    "acl_gate": provision_acl_gate,
    "stateful_firewall": provision_stateful_firewall,
    "int_telemetry": provision_int_telemetry,
}


# ---------------------------------------------------------------------------
# Scenario matrix
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One fully-resolved cell of the campaign matrix."""

    index: int
    program: str
    target: str
    fault: str
    workload: str
    count: int
    seed: int
    setup: str = ""
    #: Optional tail-latency SLA: the cell fails (``sla_breach``) when
    #: the p99 of its per-packet pipeline latency exceeds this many
    #: device-clock cycles.
    sla_p99_cycles: float | None = None
    #: Which named oracle predicts this cell's expectations
    #: (:data:`repro.netdebug.oracle.ORACLES`): ``"stateless"`` is the
    #: historical fresh-state-per-packet prediction; ``"stateful"``
    #: threads register state across the cell's packet sequence in
    #: arrival order. Not part of :attr:`key` (and therefore not of the
    #: seed derivation): the oracle changes what is *predicted*, never
    #: what traffic is generated.
    oracle: str = "stateless"

    @property
    def key(self) -> str:
        """Stable human-readable scenario identity."""
        return scenario_key(
            self.program, self.target, self.fault, self.workload
        )


def scenario_to_dict(scenario: Scenario) -> dict:
    """One resolved scenario cell as JSON data (exact inverse:
    :func:`scenario_from_dict`).

    This is the ONE scenario serialization: the shape embedded in
    :meth:`ScenarioResult.to_dict` (and therefore pinned byte-for-byte
    by the golden baselines) and the shape a service job frame carries.
    ``sla_p99_cycles`` and ``oracle`` are emitted only when set so
    pre-SLA / pre-oracle baselines keep round-tripping byte-identically.
    """
    payload = {
        "index": scenario.index,
        "program": scenario.program,
        "target": scenario.target,
        "fault": scenario.fault,
        "workload": scenario.workload,
        "count": scenario.count,
        "seed": scenario.seed,
        "setup": scenario.setup,
    }
    if scenario.sla_p99_cycles is not None:
        payload["sla_p99_cycles"] = scenario.sla_p99_cycles
    if scenario.oracle != "stateless":
        payload["oracle"] = scenario.oracle
    return payload


def scenario_from_dict(data: dict) -> Scenario:
    return Scenario(
        index=data["index"],
        program=data["program"],
        target=data["target"],
        fault=data["fault"],
        workload=data["workload"],
        count=data["count"],
        seed=data["seed"],
        setup=data.get("setup", ""),
        sla_p99_cycles=data.get("sla_p99_cycles"),
        oracle=data.get("oracle", "stateless"),
    )


@dataclass
class ScenarioMatrix:
    """A declarative (program × target × fault × workload) sweep.

    ``faults`` maps a scenario label to the fault set injected for it
    (``()`` for a fault-free baseline); fault predicates must be
    picklable (module-level functions or ``None``) for worker pools.
    ``count`` is packets per scenario; every scenario derives its own
    seed from ``seed`` and its *key* (not its matrix position), so
    workloads differ across cells but are reproducible — and stay
    identical for a given scenario when the matrix grows, which is what
    lets the cross-version differ report added/removed scenarios
    instead of seeing every seed shift.
    """

    programs: list[str] = dc_field(default_factory=lambda: ["strict_parser"])
    targets: list[str] = dc_field(default_factory=lambda: ["reference"])
    faults: dict[str, tuple[Fault, ...]] = dc_field(
        default_factory=lambda: {"baseline": ()}
    )
    workloads: list[str] = dc_field(default_factory=lambda: ["udp"])
    count: int = 32
    seed: int = 0
    setup: str = ""
    #: Optional tail-latency SLA applied to every cell (p99 pipeline
    #: latency bound in device-clock cycles); ``None`` keeps campaign
    #: verdicts purely functional.
    sla_p99_cycles: float | None = None
    #: Named oracle applied to every cell (see :attr:`Scenario.oracle`).
    oracle: str = "stateless"

    def validate(self) -> None:
        if not self.programs or not self.targets or not self.workloads \
                or not self.faults:
            raise NetDebugError(
                "scenario matrix needs at least one program, target, "
                "fault set and workload"
            )
        if self.count <= 0:
            raise NetDebugError("scenario matrix count must be positive")
        for axis, values in (
            ("programs", self.programs),
            ("targets", self.targets),
            ("workloads", self.workloads),
        ):
            if len(set(values)) != len(values):
                # Key-derived seeds make duplicates byte-identical
                # scenarios with colliding keys; reject at the matrix,
                # not downstream in the differ.
                raise NetDebugError(
                    f"scenario matrix {axis} contains duplicates: "
                    f"{values}"
                )
        for program in self.programs:
            require_known_program(program, "scenario matrix")
        for target in self.targets:
            require_known_target(target, "scenario matrix")
        for workload in self.workloads:
            if workload not in WORKLOADS:
                known = ", ".join(sorted(WORKLOADS))
                raise NetDebugError(
                    f"unknown workload {workload!r}; registry offers: "
                    f"{known}"
                )
        if self.setup and self.setup not in PROVISIONERS:
            raise NetDebugError(
                f"unknown setup provisioner {self.setup!r}"
            )
        require_known_oracle(self.oracle, "scenario matrix")
        if self.sla_p99_cycles is not None and (
            not math.isfinite(self.sla_p99_cycles)
            or self.sla_p99_cycles <= 0
        ):
            raise NetDebugError(
                "sla_p99_cycles must be a positive finite cycle bound, "
                f"got {self.sla_p99_cycles!r}"
            )

    def expand(self) -> list[Scenario]:
        """The full cross product, in deterministic matrix order."""
        self.validate()
        scenarios: list[Scenario] = []
        index = 0
        for program in self.programs:
            for target in self.targets:
                for fault_label in self.faults:
                    for workload in self.workloads:
                        key = scenario_key(
                            program, target, fault_label, workload
                        )
                        scenarios.append(
                            Scenario(
                                index=index,
                                program=program,
                                target=target,
                                fault=fault_label,
                                workload=workload,
                                count=self.count,
                                # Mixing the base seed INTO the hash
                                # (rather than shifting it above)
                                # keeps every serialized seed within
                                # JSON's interoperable 2^53 range, so
                                # double-based tooling cannot silently
                                # corrupt a baseline.
                                seed=stable_hash64(
                                    f"{self.seed}:{key}"
                                ) % (1 << 53),
                                setup=self.setup,
                                sla_p99_cycles=self.sla_p99_cycles,
                                oracle=self.oracle,
                            )
                        )
                        index += 1
        return scenarios


# ---------------------------------------------------------------------------
# Shard execution (runs inside pool workers)
# ---------------------------------------------------------------------------

#: Per-worker artifact cache: (program, target, setup) -> CompiledProgram.
#: Populated lazily inside each worker process; a worker compiles each
#: distinct program/target pair once and reuses the lowered closures for
#: every shard it executes. The cache is scoped to one campaign run via
#: an epoch token carried in every job: table entries a setup
#: provisioner installed live on the shared program object, so reusing
#: an artifact across campaigns could silently replay a *previous*
#: campaign's provisioning (and fork-started workers inherit the
#: parent's cache).
_ARTIFACTS: dict[tuple[int, str, str, str], CompiledProgram] = {}
#: Campaign epochs currently held in :data:`_ARTIFACTS`, oldest first.
#: A one-shot pool worker only ever sees one epoch; a *service* worker
#: interleaves shards from concurrent campaigns, so instead of clearing
#: the cache on every epoch switch (which would recompile on each
#: interleave) we key entries by epoch and evict whole epochs once the
#: window fills. Entries never cross epochs: a provisioned artifact
#: must not leak a previous campaign's table state.
_ARTIFACT_EPOCHS: list[int] = []
_ARTIFACT_EPOCH_WINDOW = 4
#: Epoch tokens only need to *differ* between campaigns that could ever
#: reach the same worker cache. Mixing the coordinator PID in covers the
#: cluster case, where a long-lived external worker outlives coordinator
#: processes whose plain counters would both start at 1.
_EPOCH_COUNTER = itertools.count((os.getpid() & 0xFFFFFF) << 32 | 1)


def _build_program(name: str) -> P4Program:
    return PROGRAMS[name]()  # type: ignore[operator]


def _cycle_times(bundle, device: NetworkDevice) -> list[int] | None:
    """A workload's arrival process (ns) as device-clock timestamps;
    ``None`` for untimed workloads (inject at the device clock)."""
    if bundle.times_ns is None:
        return None
    return [
        int(t * device.limits.clock_mhz / 1e3) for t in bundle.times_ns
    ]


def _scenario_times_ns(scenario: "Scenario") -> tuple[float, ...] | None:
    """The scenario's workload arrival process (ns); ``None`` when the
    workload is untimed. A zero-count probe (times ``()`` vs ``None``)
    avoids generating packets just to learn there are no times."""
    flow = default_flow(stable_hash64(scenario.key) % 8)
    probe = build_workload(scenario.workload, flow, 0, seed=scenario.seed)
    if probe.times_ns is None:
        return None
    return build_workload(
        scenario.workload, flow, scenario.count, seed=scenario.seed
    ).times_ns


def _scenario_ingress_ports(
    scenario: "Scenario",
) -> tuple[int, ...] | None:
    """The scenario's per-packet ingress ports; ``None`` when the
    workload is directionless (everything on port 0). Same zero-count
    probe trick as :func:`_scenario_times_ns`."""
    flow = default_flow(stable_hash64(scenario.key) % 8)
    probe = build_workload(scenario.workload, flow, 0, seed=scenario.seed)
    if probe.ingress_ports is None:
        return None
    return build_workload(
        scenario.workload, flow, scenario.count, seed=scenario.seed
    ).ingress_ports


def _shard_device(
    epoch: int,
    program: str,
    target: str,
    setup: str,
    engine: str = "closure",
) -> NetworkDevice:
    """A fresh device for one shard, reusing the worker's compiled artifact.

    Artifact resolution is three-tiered: the in-process epoch-scoped
    cache first (``memory_hits``), then the persistent on-disk artifact
    cache (``hits`` — a loaded artifact carries its provisioned table
    entries, so the setup provisioner is *not* re-run), and only then a
    full compile + provision, stored back to disk (``stores``). The
    cache key covers the pre-provision program IR, the target's
    deviation model and the setup label, so a hit can never alias a
    differently-provisioned artifact.
    """
    if epoch not in _ARTIFACT_EPOCHS:
        _ARTIFACT_EPOCHS.append(epoch)
        while len(_ARTIFACT_EPOCHS) > _ARTIFACT_EPOCH_WINDOW:
            stale = _ARTIFACT_EPOCHS.pop(0)
            for cached_key in [
                k for k in _ARTIFACTS if k[0] == stale
            ]:
                del _ARTIFACTS[cached_key]
    key = (epoch, program, target, setup)
    device = TARGETS[target](f"{target}-{program}", engine=engine)
    compiled = _ARTIFACTS.get(key)
    if compiled is None:
        program_obj = _build_program(program)
        cache = artifact_cache.get_artifact_cache()
        cache_key = None
        if cache is not None:
            try:
                cache_key = cache.key_for(
                    program_obj, device.compiler, extra=setup
                )
            except artifact_cache.FingerprintError:
                cache_key = None
        compiled = (
            cache.load(cache_key, device.compiler)
            if cache_key is not None
            else None
        )
        if compiled is not None:
            device.install(compiled)
        else:
            compiled = device.load(program_obj)
            if setup:
                provisioner = PROVISIONERS.get(setup)
                if provisioner is None:
                    # Reachable in spawn-started workers: they re-import
                    # the module, so provisioners registered at runtime
                    # in the parent do not exist here. Fail with the
                    # cause, not a bare KeyError deep in the pool.
                    raise NetDebugError(
                        f"setup provisioner {setup!r} is not registered "
                        "in this worker process; register provisioners "
                        "at module import time so spawned workers see "
                        "them"
                    )
                provisioner(device)
            if cache_key is not None:
                cache.store(cache_key, compiled)
        _ARTIFACTS[key] = compiled
    else:
        artifact_cache.record_memory_hit()
        device.install(compiled)
    return device


class _LatencySampler(CheckRule):
    """An always-passing tap rule that collects per-packet pipeline
    latency (``_cycles_elapsed``) so SLA cells can grade a tail bound;
    the samples double as the cell's latency distribution in the
    report."""

    name = "latency_sample"

    def __init__(self) -> None:
        self.samples: list[int] = []

    def check(self, snapshot: PacketSnapshot) -> tuple[bool, str]:
        self.samples.append(
            int(snapshot.metadata.get("_cycles_elapsed", 0))
        )
        return True, ""


def _grade_sla(scenario: "Scenario", report: SessionReport,
               sampler: _LatencySampler) -> None:
    """Grade the cell's p99 latency against its SLA via LatencyCheck.

    The samples become the report's latency distribution, the grade is
    appended as a ``sla-p99`` check outcome, and a breach adds a
    ``sla_breach`` finding — which is what flips the cell's verdict.
    """
    report.latency = LatencyStats(samples=list(sampler.samples))
    bound = int(scenario.sla_p99_cycles)
    check = LatencyCheck("sla-p99", max_cycles=bound)
    ok, detail = check.check(
        PacketSnapshot(
            stage="campaign-sla",
            wire=None,
            packet=None,
            metadata={
                "_cycles_elapsed": int(math.ceil(report.latency.p99))
            },
            alive=True,
        )
    )
    report.checks.append(
        CheckOutcome(
            rule=check.name,
            checked=1,
            passed=int(ok),
            failed=int(not ok),
            first_failure=detail,
        )
    )
    if not ok:
        report.findings.append(
            Finding(
                "sla_breach",
                f"{scenario.key}: p99 {detail}",
                stage="campaign-sla",
            )
        )


def _run_shard(job: tuple) -> "ScenarioResult":
    # Tolerant unpack: jobs grew an engine element, then an
    # oracle-factory element; older tuples (e.g. from a coordinator one
    # minor version behind) default to closures / the scenario's named
    # oracle.
    epoch, scenario, faults, keep_suite, *rest = job
    engine = rest[0] if rest else "closure"
    oracle_factory = rest[1] if len(rest) > 1 else None
    cache_before = artifact_cache.stats_snapshot()
    device = _shard_device(
        epoch, scenario.program, scenario.target, scenario.setup, engine
    )
    cache_delta = artifact_cache.stats_delta(cache_before)
    for fault in faults:
        device.injector.inject(fault)

    # Flow AND seed derive from the scenario key, never its matrix
    # position: growing the matrix must leave pre-existing scenarios'
    # traffic byte-identical or cross-version diffs would churn. The
    # flow index is bounded to 0..7 so flows stay inside provisioner
    # coverage (routes, ACL port patterns).
    bundle = build_workload(
        scenario.workload,
        default_flow(stable_hash64(scenario.key) % 8),
        scenario.count,
        seed=scenario.seed,
        # Program-aware workloads (coverage) derive packets from the
        # cell's own provisioned artifact; seeded-random factories
        # never see this.
        context=WorkloadContext(
            scenario.program,
            scenario.target,
            scenario.setup,
            compiled=device.compiled,
        ),
    )
    frames = [packet.pack() for packet in bundle.packets]
    # StreamSpec.timestamps is in device-clock cycles; the workload's
    # arrival process is in nanoseconds. The same timestamps feed the
    # oracle so programs that stamp time into packets (int_telemetry)
    # validate byte-exactly; untimed workloads inject at the device
    # clock, which the oracle cannot see, so they keep predicting at 0.
    # Likewise the workload's per-packet ingress ports feed both sides.
    cycle_times = _cycle_times(bundle, device)
    ports = (
        list(bundle.ingress_ports)
        if bundle.ingress_ports is not None
        else None
    )
    # One oracle per shard, fed the whole cell in arrival order — the
    # sharding unit IS the session, so stateful oracles never need
    # state to thread across shard boundaries. An explicit
    # oracle_factory (threaded through the job frame) overrides the
    # scenario's named oracle.
    factory = (
        oracle_factory
        if oracle_factory is not None
        else ORACLES[getattr(scenario, "oracle", "stateless")]
    )
    oracle = factory(device.program, num_ports=len(device.ports))
    expectations = oracle.expect_all(
        frames,
        ingress_ports=ports,
        timestamps=cycle_times,
        label=scenario.key,
    )
    sampler = (
        _LatencySampler() if scenario.sla_p99_cycles is not None else None
    )
    session = ValidationSession(
        name=f"campaign/{scenario.index:04d}/{scenario.key}",
        streams=[
            StreamSpec(
                stream_id=scenario.index + 1,
                packets=list(bundle.packets),
                fix_checksums=False,
                timestamps=cycle_times,
                ingress_ports=ports,
            )
        ],
        checks=[sampler] if sampler is not None else [],
        expectations=expectations,
    )
    report = run_session(device, session)
    if sampler is not None:
        _grade_sla(scenario, report, sampler)
    report.measurements["clock_cycles"] = float(device.clock_cycles)
    report.measurements["cycles_per_packet"] = (
        device.clock_cycles / report.injected if report.injected else 0.0
    )
    suite = (
        RegressionSuite(
            _suite_name(scenario), list(frames), list(expectations)
        )
        if keep_suite
        else None
    )
    return ScenarioResult(
        scenario=scenario,
        report=report,
        suite=suite,
        cache_stats=cache_delta if any(cache_delta.values()) else None,
        coverage=bundle.coverage,
    )


def _suite_name(scenario: Scenario) -> str:
    return f"scenario-{scenario.index:04d}"


def _replay_shard(job: tuple) -> "ScenarioResult":
    epoch, scenario, faults, directory, times_ns, *rest = job
    engine = rest[0] if rest else "closure"
    ports = rest[1] if len(rest) > 1 else None
    suite = RegressionSuite.load(directory, _suite_name(scenario))
    cache_before = artifact_cache.stats_snapshot()
    device = _shard_device(
        epoch, scenario.program, scenario.target, scenario.setup, engine
    )
    cache_delta = artifact_cache.stats_delta(cache_before)
    for fault in faults:
        device.injector.inject(fault)
    # Replay at the *recorded* injection timestamps (the manifest
    # persists the workload's arrival process): recorded expectations
    # pin exact bytes, so time-stamping programs only reproduce their
    # recording when the clock readings match — and reading the times
    # from the artifact keeps old recordings replayable even after the
    # live traffic generators change.
    timestamps = (
        [
            int(t * device.limits.clock_mhz / 1e3)
            for t in times_ns
        ]
        if times_ns is not None
        else None
    )
    report = replay_suite(
        device, suite, timestamps=timestamps,
        ports=list(ports) if ports is not None else None,
    )
    report.measurements["clock_cycles"] = float(device.clock_cycles)
    report.measurements["cycles_per_packet"] = (
        device.clock_cycles / report.injected if report.injected else 0.0
    )
    return ScenarioResult(
        scenario=scenario,
        report=report,
        cache_stats=cache_delta if any(cache_delta.values()) else None,
    )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    """One scenario's verdict: the session report plus derived grades."""

    scenario: Scenario
    report: SessionReport
    #: Present only while recording (dropped before reports are returned).
    suite: RegressionSuite | None = None
    #: Compile-cache counter movement while acquiring this shard's
    #: device (hits/misses/stores/memory_hits), or None when nothing
    #: moved. Like ``suite``, deliberately NOT serialized: the golden
    #: baselines pin ``to_dict`` byte-for-byte, and cache behaviour is
    #: environment, not outcome.
    cache_stats: dict[str, int] | None = None
    #: The workload's coverage map
    #: (:class:`repro.netdebug.coverage.CoverageMap`) when the scenario
    #: ran a path-guided workload; None for seeded-random workloads.
    #: Serialized (conditionally), so ``baselines/coverage.json`` pins
    #: witness bytes, signatures and prune reasons.
    coverage: object | None = None
    #: Provenance marker for compressed runs: the representative
    #: scenario key this result was synthesized from, or None when the
    #: cell was genuinely executed (see
    #: :mod:`repro.netdebug.compression`). Serialized conditionally,
    #: so uncompressed reports keep their pre-compression bytes.
    represented_by: str | None = None

    @property
    def passed(self) -> bool:
        return self.report.passed

    @property
    def verdict(self) -> str:
        return "pass" if self.passed else "fail"

    @property
    def score(self) -> float:
        """Fraction of injected packets free of findings (0..1)."""
        injected = self.report.injected
        if not injected:
            return 0.0
        return max(0.0, 1.0 - len(self.report.findings) / injected)

    @property
    def capability(self) -> Capability:
        return Capability.from_score(self.score)

    def to_dict(self) -> dict:
        payload = {
            "scenario": scenario_to_dict(self.scenario),
            "verdict": self.verdict,
            "score": round(self.score, 6),
            "capability": self.capability.value,
            "report": self.report.to_dict(),
        }
        # Conditional like the scenario axes above: pre-coverage
        # baselines must keep round-tripping byte-identically.
        if self.coverage is not None:
            payload["coverage"] = self.coverage.to_dict()
        if self.represented_by is not None:
            payload["represented_by"] = self.represented_by
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioResult":
        coverage = None
        if "coverage" in data:
            # Deferred: coverage imports this module's registries.
            from .coverage import CoverageMap

            coverage = CoverageMap.from_dict(data["coverage"])
        return cls(
            scenario=scenario_from_dict(data["scenario"]),
            report=SessionReport.from_dict(data["report"]),
            coverage=coverage,
            represented_by=data.get("represented_by"),
        )


@dataclass
class CampaignReport(CanonicalJsonReport):
    """Aggregate outcome of one campaign run.

    ``to_json`` is canonical (sorted keys, fixed separators, scenario
    order): two runs of the same matrix — serial or parallel — produce
    byte-identical output, which is what the determinism tests and the
    regression-diff workflow key on; ``from_json`` is its exact inverse
    (see :class:`~repro.netdebug.report.CanonicalJsonReport`).
    """

    name: str
    results: list[ScenarioResult] = dc_field(default_factory=list)
    #: Out-of-band run metadata (e.g. ``meta["compile_cache"]`` with the
    #: aggregated artifact-cache counters). Excluded from ``to_dict`` so
    #: canonical JSON — and the committed golden baselines — stay
    #: byte-identical regardless of cache temperature.
    meta: dict = dc_field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def scenarios(self) -> int:
        return len(self.results)

    @property
    def injected(self) -> int:
        return sum(result.report.injected for result in self.results)

    def failed(self) -> list[ScenarioResult]:
        return [result for result in self.results if not result.passed]

    def findings_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for result in self.results:
            for finding in result.report.findings:
                counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return dict(sorted(counts.items()))

    def latency_summary(self) -> dict[str, float]:
        """Cycle-latency statistics across the whole campaign.

        ``cycles_per_packet_*`` aggregate the per-scenario average
        pipeline occupancy; ``probe_samples`` counts in-band probe
        latency measurements (wrapped streams only).
        """
        per_packet = sorted(
            result.report.measurements.get("cycles_per_packet", 0.0)
            for result in self.results
        )
        if not per_packet:
            return {
                "cycles_per_packet_mean": 0.0,
                "cycles_per_packet_p50": 0.0,
                "cycles_per_packet_p99": 0.0,
                "probe_samples": 0.0,
            }
        p99 = per_packet[min(len(per_packet) - 1,
                             int(len(per_packet) * 0.99))]
        return {
            "cycles_per_packet_mean": statistics.fmean(per_packet),
            "cycles_per_packet_p50": statistics.median(per_packet),
            "cycles_per_packet_p99": p99,
            "probe_samples": float(
                sum(r.report.latency.count for r in self.results)
            ),
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "scenarios": self.scenarios,
            "injected": self.injected,
            "findings_by_kind": self.findings_by_kind(),
            "latency": {
                key: round(value, 6)
                for key, value in self.latency_summary().items()
            },
            "results": [
                result.to_dict()
                for result in sorted(
                    self.results, key=lambda r: r.scenario.index
                )
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        return cls(
            name=data["name"],
            results=[
                ScenarioResult.from_dict(r) for r in data["results"]
            ],
        )

    def summary(self) -> str:
        """Human-readable campaign table."""
        lines = [
            f"Campaign {self.name!r}: {self.scenarios} scenarios, "
            f"{self.injected} packets, "
            f"verdict={'PASS' if self.passed else 'FAIL'}",
        ]
        for result in sorted(self.results, key=lambda r: r.scenario.index):
            findings = len(result.report.findings)
            lines.append(
                f"  [{result.scenario.index:04d}] "
                f"{result.scenario.key:<55} {result.verdict.upper():<4} "
                f"score={result.score:.2f} "
                f"({result.capability.value}) findings={findings}"
            )
        kinds = self.findings_by_kind()
        if kinds:
            listing = ", ".join(f"{k}={v}" for k, v in kinds.items())
            lines.append(f"  findings by kind: {listing}")
        latency = self.latency_summary()
        lines.append(
            "  latency: "
            f"mean={latency['cycles_per_packet_mean']:.1f} "
            f"p50={latency['cycles_per_packet_p50']:.1f} "
            f"p99={latency['cycles_per_packet_p99']:.1f} cycles/pkt"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The engine: executors, streaming ingest, deterministic reassembly
# ---------------------------------------------------------------------------

def _pool_context():
    """Fork where available (cheap, inherits the import state); the
    default start method elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class CampaignProgress:
    """Where a streaming campaign stands when a result lands."""

    completed: int
    total: int
    failed: int = 0

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0


class ShardExecutor:
    """Strategy seam for executing a campaign's shard jobs.

    ``execute`` runs every job through ``shard_fn`` and returns the
    :class:`ScenarioResult` list **in any order**; implementations call
    ``on_result(result)`` as each shard completes (streaming ingest).
    :func:`run_campaign` owns expansion, progress accounting, record
    artifacts and deterministic reassembly, so the local pool and the
    distributed cluster (:class:`repro.netdebug.cluster.ClusterExecutor`)
    share everything except raw dispatch.
    """

    def execute(
        self,
        jobs: list[tuple],
        shard_fn: Callable[[tuple], "ScenarioResult"],
        on_result: Callable[["ScenarioResult"], None] | None = None,
    ) -> list["ScenarioResult"]:
        raise NotImplementedError


class SerialExecutor(ShardExecutor):
    """In-process execution, one shard at a time (still streams)."""

    def execute(self, jobs, shard_fn, on_result=None):
        results = []
        for job in jobs:
            result = shard_fn(job)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results


class PoolExecutor(ShardExecutor):
    """A local :mod:`multiprocessing` pool with streaming ingest.

    ``imap_unordered`` (chunksize 1) hands results back the moment any
    worker finishes, so long campaigns render progressively instead of
    at the barrier; reassembly downstream restores scenario order.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise NetDebugError("pool executor needs at least 1 worker")
        self.workers = workers

    def execute(self, jobs, shard_fn, on_result=None):
        if self.workers <= 1 or len(jobs) <= 1:
            return SerialExecutor().execute(jobs, shard_fn, on_result)
        workers = min(self.workers, len(jobs))
        results = []
        with _pool_context().Pool(processes=workers) as pool:
            for result in pool.imap_unordered(shard_fn, jobs, chunksize=1):
                if on_result is not None:
                    on_result(result)
                results.append(result)
        return results


def assemble_report(
    name: str, results: list["ScenarioResult"], expected: int | None = None
) -> CampaignReport:
    """Deterministically reassemble out-of-order shard results.

    The ONE reassembly definition every execution path funnels through
    (serial, pool, distributed cluster): sort by scenario index and
    refuse duplicates or gaps, so the final report is byte-identical no
    matter the arrival order — the property the golden baselines and
    the cross-version differ rely on.
    """
    ordered = sorted(results, key=lambda result: result.scenario.index)
    indices = [result.scenario.index for result in ordered]
    if len(set(indices)) != len(indices):
        raise NetDebugError(
            f"campaign {name!r}: duplicate scenario results in "
            f"reassembly (indices {indices})"
        )
    if expected is not None and len(ordered) != expected:
        raise NetDebugError(
            f"campaign {name!r}: executor returned {len(ordered)} of "
            f"{expected} shard results"
        )
    report = CampaignReport(name=name, results=ordered)
    totals: dict[str, int] = {}
    for result in ordered:
        stats = getattr(result, "cache_stats", None)
        if stats:
            for counter, moved in stats.items():
                totals[counter] = totals.get(counter, 0) + moved
    report.meta["compile_cache"] = totals
    coverage_meta = {
        result.scenario.key: result.coverage.summary()
        for result in ordered
        if getattr(result, "coverage", None) is not None
    }
    if coverage_meta:
        report.meta["coverage"] = coverage_meta
    return report


def _streaming_ingest(
    on_result: Callable[[str, SessionReport, CampaignProgress], None] | None,
    total: int,
) -> Callable[["ScenarioResult"], None] | None:
    """Adapt the user-facing ``on_result(key, report, progress)`` hook
    to the executor-facing per-result callback, owning the progress
    counters so every executor reports identically."""
    if on_result is None:
        return None
    counters = {"completed": 0, "failed": 0}

    def ingest(result: "ScenarioResult") -> None:
        counters["completed"] += 1
        if not result.passed:
            counters["failed"] += 1
        on_result(
            result.scenario.key,
            result.report,
            CampaignProgress(
                completed=counters["completed"],
                total=total,
                failed=counters["failed"],
            ),
        )

    return ingest


def _execute(
    jobs: list[tuple],
    shard_fn,
    workers: int,
    executor: ShardExecutor | None = None,
    ingest=None,
) -> list:
    if executor is None:
        executor = (
            SerialExecutor() if workers <= 1 or len(jobs) <= 1
            else PoolExecutor(workers)
        )
    return executor.execute(jobs, shard_fn, on_result=ingest)


def _require_known_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise NetDebugError(
            f"unknown execution engine {engine!r}; "
            f"choose one of {', '.join(ENGINES)}"
        )


def run_campaign(
    matrix: ScenarioMatrix,
    workers: int = 1,
    name: str = "campaign",
    record_dir: str | Path | None = None,
    executor: ShardExecutor | None = None,
    on_result: Callable[[str, SessionReport, CampaignProgress], None]
    | None = None,
    engine: str = "closure",
    oracle_factory: OracleFactory | None = None,
    compress: bool | object = False,
) -> CampaignReport:
    """Expand ``matrix`` and execute every scenario shard.

    ``workers`` > 1 runs shards on a process pool (each worker caching
    one compiled artifact per program/target); passing ``executor``
    overrides dispatch entirely — e.g.
    :class:`repro.netdebug.cluster.ClusterExecutor` to fan shards out
    to socket-connected workers on other hosts. Either way the final
    report is byte-identical to the serial run.

    ``on_result`` is the streaming-ingest hook: called as
    ``on_result(scenario_key, report, progress)`` the moment each shard
    completes, in **arrival** order (out of order under parallel
    executors), so long campaigns can render progressively.

    With ``record_dir`` set the campaign is also frozen to regression
    artifacts — one :class:`RegressionSuite` per scenario plus
    ``<name>.manifest.json`` — replayable via :func:`replay_campaign`.

    ``engine`` selects the shard execution engine (``"closure"``
    default, ``"batch"`` for the block kernel, ``"tree"`` for the
    spec-faithful baseline); all three produce byte-identical reports.

    ``oracle_factory`` overrides the matrix's named ``oracle`` with an
    arbitrary factory (called per shard as ``factory(program,
    num_ports=...)``). It rides the job frame to every worker, so it
    must be picklable — a module-level class or function. Sharding is
    per *scenario cell*, each cell's packets staying on one shard in
    arrival order, which is exactly the state boundary stateful oracles
    need.

    ``compress=True`` buckets the expanded matrix by static behaviour
    signature (:func:`repro.netdebug.compression.compress_matrix`),
    executes only bucket representatives, and re-expands the report:
    pruned cells carry their representative's result with the identity
    rewritten and ``represented_by`` set. Passing a precomputed
    :class:`~repro.netdebug.compression.CompressedMatrix` skips the
    signature pass (it must have been built from this exact matrix).
    The default ``compress=False`` is byte-identical to the
    pre-compression engine. ``on_result`` streams *executed* shards
    only — progress totals count representatives, not synthesized
    cells.
    """
    _require_known_engine(engine)
    scenarios = matrix.expand()
    record = record_dir is not None
    compressed = None
    if compress:
        # Deferred: compression imports this module's matrix types.
        from .compression import CompressedMatrix, compress_matrix

        if record:
            raise NetDebugError(
                "record_dir and compress are mutually exclusive: "
                "regression artifacts must capture every cell, not "
                "representatives"
            )
        if isinstance(compress, CompressedMatrix):
            compressed = compress
            compressed.ensure_matches(matrix)
        else:
            compressed = compress_matrix(matrix)
        representatives = set(compressed.representative_keys)
        run_scenarios = [
            scenario
            for scenario in scenarios
            if scenario.key in representatives
        ]
    else:
        run_scenarios = scenarios
    if record:
        for label, fault_set in matrix.faults.items():
            for fault in fault_set:
                if fault.predicate is not None:
                    raise NetDebugError(
                        f"fault set {label!r} carries a predicate "
                        "callable; recorded campaigns must be fully "
                        "declarative to replay from JSON"
                    )
    epoch = next(_EPOCH_COUNTER)
    jobs = [
        (
            epoch, scenario, matrix.faults[scenario.fault], record,
            engine, oracle_factory,
        )
        for scenario in run_scenarios
    ]
    results = _execute(
        jobs, _run_shard, workers, executor,
        _streaming_ingest(on_result, len(jobs)),
    )
    if compressed is not None:
        from .compression import expand_results

        results = expand_results(compressed, scenarios, results)
    report = assemble_report(name, results, expected=len(scenarios))
    if compressed is not None:
        report.meta["compression"] = {
            "expanded": compressed.expanded_cells,
            "representatives": len(compressed.entries),
            "ratio": compressed.ratio,
        }

    if record:
        directory = Path(record_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for result in report.results:
            result.suite.save(directory)
        _write_manifest(directory, name, matrix, scenarios)
    for result in report.results:
        result.suite = None
    return report


# ---------------------------------------------------------------------------
# Record / replay via the regression-artifact format
# ---------------------------------------------------------------------------

def fault_to_dict(fault: Fault) -> dict:
    """One fault as declarative JSON data.

    Predicate-carrying faults are refused: a predicate is code, and
    every consumer of this codec (recorded manifests, compressed-matrix
    maps, service job frames) promises that deserialization never
    executes anything.
    """
    if fault.predicate is not None:
        raise NetDebugError(
            f"fault {fault.kind.value!r} at stage {fault.stage!r} "
            "carries a predicate callable; predicate faults cannot be "
            "serialized losslessly as data"
        )
    return {
        "kind": fault.kind.value,
        "stage": fault.stage,
        "header": fault.header,
        "field": fault.field,
        "mask": fault.mask,
        "port": fault.port,
        "length": fault.length,
        "table": fault.table,
        "counter": fault.counter,
        "extra_cycles": fault.extra_cycles,
    }


def fault_from_dict(data: dict) -> Fault:
    return Fault(
        kind=FaultKind(data["kind"]),
        stage=data.get("stage", ""),
        header=data.get("header"),
        field=data.get("field"),
        mask=data.get("mask", 0),
        port=data.get("port"),
        length=data.get("length"),
        table=data.get("table"),
        counter=data.get("counter"),
        extra_cycles=data.get("extra_cycles", 0),
    )


# Historical private names (compression and the manifest writer grew up
# calling these).
_fault_to_dict = fault_to_dict
_fault_from_dict = fault_from_dict


def matrix_to_dict(matrix: ScenarioMatrix) -> dict:
    """A scenario matrix as declarative JSON data (lossless inverse:
    :func:`matrix_from_dict`). Refuses predicate-carrying fault sets —
    see :func:`fault_to_dict`. The ONE matrix codec shared by the
    compression map format and the service submit frame."""
    payload = {
        "programs": list(matrix.programs),
        "targets": list(matrix.targets),
        "faults": {
            label: [fault_to_dict(f) for f in fault_set]
            for label, fault_set in matrix.faults.items()
        },
        "workloads": list(matrix.workloads),
        "count": matrix.count,
        "seed": matrix.seed,
        "setup": matrix.setup,
    }
    # Conditional, matching the ScenarioResult serialization contract.
    if matrix.sla_p99_cycles is not None:
        payload["sla_p99_cycles"] = matrix.sla_p99_cycles
    if matrix.oracle != "stateless":
        payload["oracle"] = matrix.oracle
    return payload


def matrix_from_dict(data: dict) -> ScenarioMatrix:
    return ScenarioMatrix(
        programs=list(data["programs"]),
        targets=list(data["targets"]),
        faults={
            label: tuple(fault_from_dict(f) for f in fault_set)
            for label, fault_set in data["faults"].items()
        },
        workloads=list(data["workloads"]),
        count=data["count"],
        seed=data["seed"],
        setup=data.get("setup", ""),
        sla_p99_cycles=data.get("sla_p99_cycles"),
        oracle=data.get("oracle", "stateless"),
    )


def _write_manifest(
    directory: Path,
    name: str,
    matrix: ScenarioMatrix,
    scenarios: list[Scenario],
) -> Path:
    payload = {
        "name": name,
        "faults": {
            label: [_fault_to_dict(f) for f in fault_set]
            for label, fault_set in matrix.faults.items()
        },
        "scenarios": [
            {
                "index": s.index,
                "program": s.program,
                "target": s.target,
                "fault": s.fault,
                "workload": s.workload,
                "count": s.count,
                "seed": s.seed,
                "setup": s.setup,
                "suite": _suite_name(s),
                # Conditional for manifest stability; recorded for
                # provenance only (replay grades recorded expectations,
                # not live latency).
                **(
                    {"sla_p99_cycles": s.sla_p99_cycles}
                    if s.sla_p99_cycles is not None
                    else {}
                ),
                # Timed workloads persist their arrival process (ns):
                # the recorded expectations pin bytes that may derive
                # from injection time, so replay must not depend on
                # the *live* generators still producing these times.
                **(
                    {"times_ns": list(times_ns)}
                    if (times_ns := _scenario_times_ns(s)) is not None
                    else {}
                ),
                # Directional workloads persist their per-packet
                # ingress ports for the same reason: recorded
                # expectations are only reproducible when replay
                # injects each packet on the port it was recorded on.
                **(
                    {"ingress_ports": list(ports)}
                    if (ports := _scenario_ingress_ports(s)) is not None
                    else {}
                ),
                **(
                    {"oracle": s.oracle}
                    if s.oracle != "stateless"
                    else {}
                ),
            }
            for s in scenarios
        ],
    }
    path = directory / f"{name}.manifest.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def record_campaign(
    matrix: ScenarioMatrix,
    directory: str | Path,
    workers: int = 1,
    name: str = "campaign",
) -> CampaignReport:
    """Run ``matrix`` and freeze it to replayable regression artifacts."""
    return run_campaign(
        matrix, workers=workers, name=name, record_dir=directory
    )


def replay_campaign(
    directory: str | Path,
    name: str = "campaign",
    workers: int = 1,
    executor: ShardExecutor | None = None,
    on_result: Callable[[str, SessionReport, CampaignProgress], None]
    | None = None,
    engine: str = "closure",
) -> CampaignReport:
    """Replay a recorded campaign from its artifacts on fresh devices.

    Fault sets and scenario assignments come from the manifest; frames
    and expectations from the per-scenario regression suites (suites
    with truncated pcap captures are rejected at load). ``executor``
    and ``on_result`` behave exactly as in :func:`run_campaign` —
    replay shards ride the same dispatch/reassembly seam (a cluster
    replays an archived campaign the way it runs a live one, reading
    artifacts from a shared filesystem path). With a warm artifact
    cache replay skips recompilation entirely (see
    :mod:`repro.target.artifact_cache`).
    """
    _require_known_engine(engine)
    directory = Path(directory)
    manifest_path = directory / f"{name}.manifest.json"
    if not manifest_path.exists():
        raise NetDebugError(
            f"no campaign manifest at {manifest_path}"
        )
    payload = json.loads(manifest_path.read_text())
    faults = {
        label: tuple(_fault_from_dict(f) for f in fault_set)
        for label, fault_set in payload["faults"].items()
    }
    jobs = []
    for s in payload["scenarios"]:
        scenario = Scenario(
            index=s["index"],
            program=s["program"],
            target=s["target"],
            fault=s["fault"],
            workload=s["workload"],
            count=s["count"],
            seed=s["seed"],
            setup=s.get("setup", ""),
            sla_p99_cycles=s.get("sla_p99_cycles"),
            oracle=s.get("oracle", "stateless"),
        )
        # A hand-edited or version-skewed manifest must fail here with a
        # clear error, not as a KeyError inside the worker pool.
        require_known_program(
            scenario.program, f"manifest scenario {scenario.index}"
        )
        require_known_target(
            scenario.target, f"manifest scenario {scenario.index}"
        )
        if scenario.fault not in faults:
            raise NetDebugError(
                f"manifest scenario {scenario.index} references unknown "
                f"fault set {scenario.fault!r}"
            )
        jobs.append(
            (
                scenario,
                faults[scenario.fault],
                str(directory),
                # Pre-PR-5 manifests carry no times: replay them at
                # the device clock, exactly as they were recorded.
                tuple(s["times_ns"]) if "times_ns" in s else None,
                engine,
                # Pre-directional manifests carry no ports: replay on
                # port 0, exactly as they were recorded.
                (
                    tuple(s["ingress_ports"])
                    if "ingress_ports" in s
                    else None
                ),
            )
        )
    epoch = next(_EPOCH_COUNTER)
    jobs = [(epoch, *job) for job in jobs]
    results = _execute(
        jobs, _replay_shard, workers, executor,
        _streaming_ingest(on_result, len(jobs)),
    )
    return assemble_report(
        f"replay-{payload['name']}", results, expected=len(jobs)
    )


# Imported for its registration side effect: the ``coverage`` workload
# installs itself into :data:`repro.sim.traffic.WORKLOADS` at import
# time, and pool/cluster workers import THIS module — so every
# execution path (serial, spawn-started pool, remote cluster worker)
# sees an identical registry. Must stay at the bottom: coverage
# resolves scenario axes through this module's TARGETS/PROVISIONERS.
from . import coverage as _coverage  # noqa: E402,F401
