"""Scenario-matrix compression: representatives plus an equivalence map.

Campaign matrices grow multiplicatively (programs × targets × faults ×
workloads) but many cells are behaviorally equivalent: a fault aimed at
a stage the device doesn't have, a sibling target whose deviation model
never fires on this workload's packets. Following Control Plane
Compression (Beckett et al., SIGCOMM 2018), :func:`compress_matrix`
collapses the expanded matrix into one representative per behaviour
bucket plus an :class:`EquivalenceMap` recording exactly which pruned
cells each representative stands for and why — and the claim is
*machine-checked*, not heuristic: :func:`run_pruned_cell` re-runs any
pruned cell's configuration on its representative's identity-derived
traffic and :mod:`repro.netdebug.diffing`'s ``verify_equivalence``
byte-diffs the result against the representative's stored
:class:`~repro.netdebug.campaign.ScenarioResult` (modulo cell
identity).

The signature a bucket keys on is cheap and static — no scenario is
executed end-to-end to compress the matrix:

* **program / setup / workload / count / oracle** — the axes that pick
  traffic and prediction semantics. Workload is always a component:
  two workloads may drive identical path classes and still differ in
  wire bytes, so merging across them would be unsound.
* **reachable faults** — the cell's fault set with inert faults
  normalized away (a ``TABLE_STUCK_MISS`` on a table the program
  doesn't define, a stage fault on a stage the device doesn't have).
  Cells whose fault sets differ only by inert faults merge.
* **behaviour fingerprint** — every workload packet replayed through
  :class:`~repro.netdebug.coverage.TracingInterpreter` twice, under
  the spec model and under the target's
  :class:`~repro.baselines.paths.DeviationModel`, recording path
  signature, egress port and output bytes. Two cells with identical
  fingerprints drive identical behaviour classes *and* identical
  observable deviations (the output-bytes flag is what separates a
  deparse-budget truncation from a path-identical pass-through).

Cells the static signature cannot soundly judge are **pinned** to
themselves (singleton buckets, recorded in ``pins`` with the reason):
register-bearing programs, stateful oracles, SLA-graded cells, timed
or directional or path-guided workloads, and timestamp-reading
programs — anywhere behaviour couples packets through state or time
that a fresh-state per-packet replay doesn't model.

``run_campaign(compress=True)`` executes representatives only and
re-expands the report: every pruned cell's result is synthesized from
its representative (identity rewritten, ``represented_by`` recorded),
so the re-expanded :class:`~repro.netdebug.campaign.CampaignReport`
has the full matrix shape and canonical bytes stay stable.
``compress=False`` (the default) is byte-identical to the
pre-compression engine.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import sys
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..baselines.paths import SPEC_MODEL, DeviationModel
from ..bitutils import stable_hash64
from ..exceptions import NetDebugError, P4RuntimeError
from ..p4.program import P4Program
from ..p4.stdlib import PROGRAMS
from ..sim.traffic import WorkloadContext, build_workload, default_flow
from ..target.batch import _reads_metadata
from ..target.faults import Fault, FaultKind
from .campaign import (
    PROVISIONERS,
    TARGETS,
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    _EPOCH_COUNTER,
    _run_shard,
    matrix_from_dict,
    matrix_to_dict,
)
from .coverage import TracingInterpreter, _signature
from .report import CanonicalJsonReport, SessionReport

__all__ = [
    "EquivalenceEntry",
    "CompressedMatrix",
    "compress_matrix",
    "expand_results",
    "synthesize_result",
    "run_pruned_cell",
    "equivalence_view",
    "baseline_compression_matrix",
    "main",
]


# ---------------------------------------------------------------------------
# Static per-cell signatures
# ---------------------------------------------------------------------------

@dataclass
class _CellContext:
    """Compile-once facts about one (program, target, setup) triple."""

    program: P4Program
    compiled: object
    model: DeviationModel
    stages: frozenset[str]
    tables: frozenset[str]
    counters: frozenset[str]
    has_registers: bool
    reads_timestamp: bool


def _cell_context(program: str, target: str, setup: str) -> _CellContext:
    device = TARGETS[target](f"compress-{target}-{program}")
    compiled = device.load(PROGRAMS[program]())  # type: ignore[operator]
    if setup:
        PROVISIONERS[setup](device)
    prog = device.program
    return _CellContext(
        program=prog,
        compiled=compiled,
        model=DeviationModel.from_compiled(compiled),
        stages=frozenset(device.stage_names()),
        tables=frozenset(prog.all_tables()),
        counters=frozenset(prog.counters),
        has_registers=bool(prog.registers),
        reads_timestamp=_reads_metadata(
            (prog.parser, prog.ingress, prog.egress),
            "ingress_global_timestamp",
        ),
    )


def _fault_reachable(fault: Fault, ctx: _CellContext) -> bool:
    """Whether ``fault`` can observably fire on this cell's device.

    :class:`~repro.target.faults.Fault` carries no validation — ghost
    faults (a stage the pipeline doesn't have, a table the program
    doesn't define) inject fine and change nothing. Normalizing them
    away is what merges the fault axis.
    """
    if fault.kind is FaultKind.TABLE_STUCK_MISS:
        return bool(fault.table) and fault.table in ctx.tables
    if fault.kind is FaultKind.COUNTER_FREEZE:
        return bool(fault.counter) and fault.counter in ctx.counters
    return fault.stage in ctx.stages


def _probe(
    program: P4Program, model: DeviationModel, wire: bytes
) -> tuple[str, int | None, str | None]:
    """(path signature, egress port, output hex) of one replay."""
    interp = TracingInterpreter(
        program,
        honor_reject=model.honor_reject,
        quantize_tcam=model.quantize_tcam,
        deparse_field_budget=model.deparse_field_budget,
    )
    try:
        result = interp.process(wire)
    except P4RuntimeError as exc:
        return (f"!error|{exc}", None, None)
    out = result.packet.pack().hex() if result.packet is not None else None
    return (_signature(result, interp.table_choices), result.egress_port, out)


def _behavior_fingerprint(wires: list[bytes], ctx: _CellContext) -> str:
    """Per-packet spec-vs-target behaviour classes, in arrival order.

    The trailing ``=``/``!`` flag compares observable output (egress
    port + wire bytes) between the spec and target replays: path
    signatures alone miss deviations that keep the path but change the
    bytes (the tofino deparse budget truncating a header).
    """
    items = []
    for wire in wires:
        spec = _probe(ctx.program, SPEC_MODEL, wire)
        tgt = _probe(ctx.program, ctx.model, wire)
        flag = "=" if spec[1:] == tgt[1:] else "!"
        items.append(f"{spec[0]}>>{tgt[0]}>>{flag}")
    return "\n".join(items)


def _static_pin(scenario: Scenario, ctx: _CellContext) -> str | None:
    """Pin reasons decidable before any traffic is built."""
    if ctx.has_registers:
        return "register-bearing program"
    if scenario.oracle != "stateless":
        return f"stateful oracle {scenario.oracle!r}"
    if scenario.sla_p99_cycles is not None:
        return "sla-graded cell"
    if ctx.reads_timestamp:
        return "timestamp-reading program"
    return None


def _bundle_pin(bundle) -> str | None:
    """Pin reasons visible only on the built workload bundle."""
    if bundle.coverage is not None:
        return "path-guided workload"
    if bundle.times_ns is not None:
        return "timed workload"
    if bundle.ingress_ports is not None:
        return "directional workload"
    return None


def _digest(components: dict[str, str]) -> str:
    blob = json.dumps(components, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _cell_signature(
    scenario: Scenario,
    faults: tuple[Fault, ...],
    ctx: _CellContext,
) -> tuple[dict[str, str], str | None]:
    """(signature components, pin reason) for one cell."""
    pin = _static_pin(scenario, ctx)
    bundle = None
    if pin is None:
        bundle = build_workload(
            scenario.workload,
            default_flow(stable_hash64(scenario.key) % 8),
            scenario.count,
            seed=scenario.seed,
            context=WorkloadContext(
                scenario.program,
                scenario.target,
                scenario.setup,
                compiled=ctx.compiled,
            ),
        )
        pin = _bundle_pin(bundle)
    if pin is not None:
        # Singleton bucket: the key itself is the signature, so the
        # cell can only ever represent itself.
        return {"pinned": scenario.key, "pin_reason": pin}, pin
    reachable = sorted(
        (
            json.dumps(
                _fault_to_dict(f), sort_keys=True, separators=(",", ":")
            )
            for f in faults
            if _fault_reachable(f, ctx)
        ),
    )
    components = {
        "program": scenario.program,
        "setup": scenario.setup,
        "workload": scenario.workload,
        "count": str(scenario.count),
        "oracle": scenario.oracle,
        "faults": "[" + ",".join(reachable) + "]",
        "behavior": _behavior_fingerprint(
            [packet.pack() for packet in bundle.packets], ctx
        ),
    }
    return components, None


# ---------------------------------------------------------------------------
# The compressed artifact
# ---------------------------------------------------------------------------

@dataclass
class EquivalenceEntry:
    """One bucket: a representative and the cells it stands for."""

    representative: str
    #: Pruned scenario keys, in matrix order (empty for singletons).
    represented: list[str] = dc_field(default_factory=list)
    #: The signature components that matched — the *why* of the merge.
    components: list[str] = dc_field(default_factory=list)
    digest: str = ""

    def to_dict(self) -> dict:
        return {
            "representative": self.representative,
            "represented": list(self.represented),
            "components": list(self.components),
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EquivalenceEntry":
        return cls(
            representative=data["representative"],
            represented=list(data["represented"]),
            components=list(data["components"]),
            digest=data.get("digest", ""),
        )


# The matrix codec lives with the matrix now
# (:func:`repro.netdebug.campaign.matrix_to_dict`); these aliases keep
# compression's historical internal names working.
_matrix_to_dict = matrix_to_dict
_matrix_from_dict = matrix_from_dict


def _matrix_digest(payload: dict) -> str:
    """Short content digest of a serialized matrix, for error messages."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CompressedMatrix(CanonicalJsonReport):
    """A matrix, its bucketing, and the machine-checkable why.

    ``to_json`` is canonical (sorted keys, fixed separators), so
    ``baselines/compression.json`` pins the bucketing byte-for-byte:
    any change to signature semantics, fault normalization or pin
    guards shows up as a golden diff, never as a silent re-bucket.
    """

    name: str = "compression"
    matrix: ScenarioMatrix = dc_field(default_factory=ScenarioMatrix)
    #: scenario key -> signature digest (every expanded cell).
    signatures: dict[str, str] = dc_field(default_factory=dict)
    #: scenario key -> pin reason (cells forced into singletons).
    pins: dict[str, str] = dc_field(default_factory=dict)
    #: One entry per bucket, in representative matrix order.
    entries: list[EquivalenceEntry] = dc_field(default_factory=list)

    @property
    def expanded_cells(self) -> int:
        return len(self.signatures)

    @property
    def representative_keys(self) -> list[str]:
        return [entry.representative for entry in self.entries]

    @property
    def pruned_keys(self) -> list[str]:
        return [
            key for entry in self.entries for key in entry.represented
        ]

    @property
    def representative_for(self) -> dict[str, str]:
        """pruned key -> the representative that stands for it."""
        return {
            key: entry.representative
            for entry in self.entries
            for key in entry.represented
        }

    @property
    def ratio(self) -> float:
        """Executed cells over expanded cells (1.0 = no compression)."""
        if not self.signatures:
            return 1.0
        return len(self.entries) / len(self.signatures)

    def ensure_matches(self, matrix: ScenarioMatrix) -> None:
        """Refuse to apply this map to a matrix it wasn't built from.

        The error names both content digests and the first matrix axis
        that differs, so a stale map is diagnosable from the message
        alone (which of count/seed/faults/... drifted), not just
        detectable.
        """
        ours = matrix_to_dict(self.matrix)
        offered = matrix_to_dict(matrix)
        if ours == offered:
            return
        axis = next(
            key
            for key in (*ours, *(k for k in offered if k not in ours))
            if ours.get(key) != offered.get(key)
        )
        raise NetDebugError(
            f"compressed matrix {self.name!r} was built from a "
            "different scenario matrix: map digest "
            f"{_matrix_digest(ours)} vs offered matrix digest "
            f"{_matrix_digest(offered)}, first differing axis "
            f"{axis!r} ({ours.get(axis)!r} vs {offered.get(axis)!r}); "
            "recompress instead of reusing a stale equivalence map"
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "matrix": _matrix_to_dict(self.matrix),
            "expanded": self.expanded_cells,
            "representatives": len(self.entries),
            "ratio": round(self.ratio, 6),
            "signatures": dict(self.signatures),
            "pins": dict(self.pins),
            "equivalence": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompressedMatrix":
        return cls(
            name=data["name"],
            matrix=_matrix_from_dict(data["matrix"]),
            signatures=dict(data["signatures"]),
            pins=dict(data.get("pins", {})),
            entries=[
                EquivalenceEntry.from_dict(e) for e in data["equivalence"]
            ],
        )


def compress_matrix(
    matrix: ScenarioMatrix, name: str = "compression"
) -> CompressedMatrix:
    """Bucket ``matrix``'s cells by static behaviour signature.

    Deterministic: the same matrix always produces the same buckets
    and the same representatives (the first cell of each bucket in
    matrix expansion order — which keeps fault-free ``baseline`` cells
    representative wherever fault labels merge, since matrices
    conventionally list the baseline label first).
    """
    scenarios = matrix.expand()
    _matrix_to_dict(matrix)  # reject predicate-carrying fault sets
    contexts: dict[tuple[str, str, str], _CellContext] = {}
    signatures: dict[str, str] = {}
    pins: dict[str, str] = {}
    buckets: dict[str, EquivalenceEntry] = {}
    order: list[str] = []
    for scenario in scenarios:
        ckey = (scenario.program, scenario.target, scenario.setup)
        ctx = contexts.get(ckey)
        if ctx is None:
            ctx = contexts[ckey] = _cell_context(*ckey)
        components, pin = _cell_signature(
            scenario, matrix.faults[scenario.fault], ctx
        )
        digest = _digest(components)
        signatures[scenario.key] = digest
        if pin is not None:
            pins[scenario.key] = pin
        entry = buckets.get(digest)
        if entry is None:
            buckets[digest] = EquivalenceEntry(
                representative=scenario.key,
                components=sorted(components),
                digest=digest,
            )
            order.append(digest)
        else:
            entry.represented.append(scenario.key)
    return CompressedMatrix(
        name=name,
        matrix=matrix,
        signatures=signatures,
        pins=pins,
        entries=[buckets[digest] for digest in order],
    )


# ---------------------------------------------------------------------------
# Report re-expansion
# ---------------------------------------------------------------------------

def synthesize_result(
    rep: ScenarioResult, pruned: Scenario
) -> ScenarioResult:
    """The pruned cell's result, synthesized from its representative.

    A deep copy of the representative's session report with the cell
    identity rewritten: session name, device name, and the scenario
    key embedded in finding/check messages. Everything else — verdict,
    findings, latency, measurements — is the representative's, which
    is exactly the equivalence claim ``verify_equivalence`` audits.
    """
    payload = json.loads(json.dumps(rep.report.to_dict()))
    payload["session"] = f"campaign/{pruned.index:04d}/{pruned.key}"
    payload["device"] = f"{pruned.target}-{pruned.program}"
    rep_key = rep.scenario.key
    for finding in payload.get("findings", ()):
        finding["message"] = finding["message"].replace(
            rep_key, pruned.key
        )
    for check in payload.get("checks", ()):
        first = check.get("first_failure")
        if isinstance(first, str):
            check["first_failure"] = first.replace(rep_key, pruned.key)
    return ScenarioResult(
        scenario=pruned,
        report=SessionReport.from_dict(payload),
        represented_by=rep_key,
    )


def expand_results(
    compressed: CompressedMatrix,
    scenarios: list[Scenario],
    rep_results: list[ScenarioResult],
) -> list[ScenarioResult]:
    """Representative results -> the full matrix's result list."""
    by_key = {result.scenario.key: result for result in rep_results}
    rep_for = compressed.representative_for
    results = list(rep_results)
    for scenario in scenarios:
        if scenario.key in by_key:
            continue
        rep_key = rep_for.get(scenario.key)
        if rep_key is None or rep_key not in by_key:
            raise NetDebugError(
                f"compressed run is missing a result for "
                f"{scenario.key!r} (representative {rep_key!r}); the "
                "equivalence map does not cover this matrix"
            )
        results.append(synthesize_result(by_key[rep_key], scenario))
    return results


# ---------------------------------------------------------------------------
# The machine check
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _TrafficPinnedScenario(Scenario):
    """A scenario whose traffic identity is pinned to another cell.

    ``key`` drives flow selection, seed-derived workload bytes and
    session labels inside the shard runner; overriding it replays the
    *representative's* exact traffic under the *pruned* cell's
    program/target/fault configuration — the hybrid run the
    equivalence audit needs.
    """

    pinned_key: str = ""

    @property
    def key(self) -> str:
        return self.pinned_key or Scenario.key.fget(self)  # type: ignore[attr-defined]


def run_pruned_cell(
    compressed: CompressedMatrix,
    pruned_key: str,
    engine: str = "closure",
) -> ScenarioResult:
    """Genuinely execute one pruned cell on its representative's traffic.

    Runs the pruned cell's configuration (program, target, fault set,
    setup, oracle) against the representative's identity-derived
    traffic (workload, seed, flow, session labels), through the same
    shard runner campaigns use.
    """
    rep_for = compressed.representative_for
    rep_key = rep_for.get(pruned_key)
    if rep_key is None:
        raise NetDebugError(
            f"{pruned_key!r} is not a pruned cell of compressed matrix "
            f"{compressed.name!r}"
        )
    by_key = {s.key: s for s in compressed.matrix.expand()}
    pruned = by_key[pruned_key]
    rep = by_key[rep_key]
    hybrid = _TrafficPinnedScenario(
        index=rep.index,
        program=pruned.program,
        target=pruned.target,
        fault=pruned.fault,
        workload=rep.workload,
        count=rep.count,
        seed=rep.seed,
        setup=pruned.setup,
        sla_p99_cycles=pruned.sla_p99_cycles,
        oracle=pruned.oracle,
        pinned_key=rep_key,
    )
    job = (
        next(_EPOCH_COUNTER),
        hybrid,
        compressed.matrix.faults[pruned.fault],
        False,
        engine,
        None,
    )
    return _run_shard(job)


def equivalence_view(payload: dict, include_timing: bool = True) -> dict:
    """A ``ScenarioResult`` dict modulo cell identity.

    Drops the scenario block and provenance marker, blanks the session
    and device names; with ``include_timing=False`` (cross-target
    buckets) also
    drops clock-cycle measurements and latency samples — targets model
    different per-stage cycle costs, and the equivalence claim is
    functional, not temporal, across targets. Within one target timing
    is part of the claim.
    """
    view = json.loads(json.dumps(payload))
    view.pop("scenario", None)
    view.pop("represented_by", None)
    report = view["report"]
    report["session"] = ""
    report["device"] = ""
    if not include_timing:
        report["measurements"] = {
            key: value
            for key, value in report["measurements"].items()
            if key not in ("clock_cycles", "cycles_per_packet")
        }
        report["latency"] = {}
    return view


def _cell_target(key: str) -> str:
    return key.split("/")[1]


def audit_cell(
    compressed: CompressedMatrix,
    rep_result: ScenarioResult,
    pruned_key: str,
    engine: str = "closure",
) -> str | None:
    """One equivalence check: re-run ``pruned_key``, byte-diff.

    Returns ``None`` when the hybrid run reproduces the
    representative's stored result under :func:`equivalence_view`, or
    a failure description when the equivalence claim is violated.
    """
    rep_key = rep_result.scenario.key
    hybrid = run_pruned_cell(compressed, pruned_key, engine=engine)
    include_timing = _cell_target(pruned_key) == _cell_target(rep_key)
    got = equivalence_view(hybrid.to_dict(), include_timing)
    want = equivalence_view(rep_result.to_dict(), include_timing)
    if got == want:
        return None
    fields = sorted(
        k
        for k in set(got) | set(want)
        if got.get(k) != want.get(k)
    )
    return (
        f"{pruned_key}: re-run differs from representative {rep_key} "
        f"in {', '.join(fields)}"
    )


# ---------------------------------------------------------------------------
# Seeded baseline + CLI
# ---------------------------------------------------------------------------

def baseline_compression_matrix() -> ScenarioMatrix:
    """The seeded matrix ``baselines/compression.json`` pins.

    A strict superset of the campaign baseline matrix (same programs,
    targets, seed, count, setup, plus ghost-fault labels and the imix
    workload): key-derived seeds keep the shared cells' traffic
    byte-identical, so the re-expanded compressed report diffs clean
    against ``baselines/campaign.json`` — shared cells compare equal,
    the extra cells surface as informational additions.
    """
    # Import here: diffing imports this module for verify_equivalence.
    from .diffing import (
        BASELINE_CAMPAIGN_COUNT,
        BASELINE_SEED,
    )

    return ScenarioMatrix(
        programs=["strict_parser", "acl_firewall"],
        targets=["reference", "sdnet", "tofino"],
        faults={
            "baseline": (),
            # Ghost faults: real fault objects aimed at structure no
            # stdlib device/program has — exactly the inert cells the
            # fault normalization should collapse into the baseline.
            "ghost_stage": (
                Fault(FaultKind.BLACKHOLE, stage="egress.9"),
            ),
            "ghost_table": (
                Fault(FaultKind.TABLE_STUCK_MISS, table="no_such_table"),
            ),
        },
        workloads=["udp", "malformed", "imix"],
        count=BASELINE_CAMPAIGN_COUNT,
        seed=BASELINE_SEED,
        setup="acl_gate",
    )


def _append_summary(path: Path, compressed: CompressedMatrix) -> None:
    lines = [
        "## Matrix compression",
        "",
        f"- expanded cells: {compressed.expanded_cells}",
        f"- representatives: {len(compressed.entries)}",
        f"- pruned: {len(compressed.pruned_keys)}",
        f"- pinned singletons: {len(compressed.pins)}",
        f"- compression ratio: {compressed.ratio:.3f}",
        "",
    ]
    with path.open("a") as handle:
        handle.write("\n".join(lines))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netdebug.compression",
        description=(
            "Compress the seeded baseline matrix, optionally run its "
            "representatives and audit the equivalence claim."
        ),
    )
    parser.add_argument(
        "--map",
        metavar="PATH",
        help="write the CompressedMatrix artifact to PATH",
    )
    parser.add_argument(
        "--run",
        action="store_true",
        help="execute representatives and re-expand the report",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the re-expanded CampaignReport to PATH (with --run)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes"
    )
    parser.add_argument(
        "--engine", default="closure", help="shard execution engine"
    )
    parser.add_argument(
        "--audit",
        type=int,
        default=0,
        metavar="N",
        help="verify N seeded-random pruned cells (with --run)",
    )
    parser.add_argument(
        "--audit-all",
        action="store_true",
        help="verify every pruned cell (with --run)",
    )
    parser.add_argument(
        "--audit-seed",
        type=int,
        default=0,
        help="seed for sampling audited cells (e.g. the CI run id)",
    )
    parser.add_argument(
        "--summary",
        metavar="PATH",
        help="append a markdown compression summary to PATH",
    )
    args = parser.parse_args(argv)
    if (args.audit or args.audit_all or args.out) and not args.run:
        parser.error("--audit/--audit-all/--out require --run")

    matrix = baseline_compression_matrix()
    compressed = compress_matrix(matrix)
    print(
        f"compressed {compressed.expanded_cells} cells -> "
        f"{len(compressed.entries)} representatives "
        f"(ratio {compressed.ratio:.3f}, {len(compressed.pins)} pinned)"
    )
    if args.map:
        compressed.save(args.map)
        print(f"equivalence map written to {args.map}")
    if args.summary:
        _append_summary(Path(args.summary), compressed)

    if not args.run:
        return 0

    # Deferred: run_campaign lazily imports this module.
    from .campaign import run_campaign

    report = run_campaign(
        matrix,
        workers=args.workers,
        compress=compressed,
        engine=args.engine,
    )
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"re-expanded report written to {args.out}")

    pruned = compressed.pruned_keys
    if args.audit_all:
        audited = list(pruned)
    elif args.audit:
        rng = random.Random(args.audit_seed)
        audited = sorted(
            rng.sample(sorted(pruned), min(args.audit, len(pruned)))
        )
    else:
        audited = []
    if audited:
        by_key = {r.scenario.key: r for r in report.results}
        rep_for = compressed.representative_for
        failures = []
        for key in audited:
            failure = audit_cell(
                compressed, by_key[rep_for[key]], key, engine=args.engine
            )
            status = "FAIL" if failure else "ok"
            print(f"audit {key}: {status}")
            if failure:
                failures.append(failure)
        if failures:
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
        print(f"equivalence audit passed for {len(audited)} pruned cells")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
