"""Regression artifacts: freeze a validation run, replay it later.

A validation session's inputs and oracle expectations can be exported as
a pair of files — a pcap of the injected frames and a JSON expectation
list — and replayed against any device later. This is the workflow for
catching regressions across program revisions, compiler updates, or
target migrations: record once on a known-good build, replay everywhere.

The artifacts are self-contained and tool-agnostic: the pcap opens in
any analyzer, and the JSON is the checker's native expectation format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import NetDebugError
from ..packet.pcap import PcapRecord, read_pcap, write_pcap
from ..target.device import NetworkDevice
from .checker import ExpectedOutput, OutputChecker
from .oracle import OracleFactory, StatelessOracle
from .report import SessionReport

__all__ = ["RegressionSuite", "record_suite", "replay_suite"]


def _expectation_to_dict(expectation: ExpectedOutput) -> dict:
    return {
        "wire": expectation.wire.hex() if expectation.wire is not None else None,
        "fields": dict(expectation.fields),
        "egress_port": expectation.egress_port,
        "egress_ports": (
            list(expectation.egress_ports)
            if expectation.egress_ports is not None
            else None
        ),
        "forbid": expectation.forbid,
        "label": expectation.label,
    }


def _expectation_from_dict(data: dict) -> ExpectedOutput:
    egress_ports = data.get("egress_ports")
    return ExpectedOutput(
        wire=bytes.fromhex(data["wire"]) if data["wire"] is not None else None,
        fields={k: int(v) for k, v in data["fields"].items()},
        egress_port=data["egress_port"],
        egress_ports=(
            tuple(int(p) for p in egress_ports)
            if egress_ports is not None
            else None
        ),
        forbid=data["forbid"],
        label=data["label"],
    )


def _check_expectation(name: str, index: int, e: ExpectedOutput) -> None:
    """Reject self-contradictory expectations at suite-build time.

    A ``forbid`` expectation asserts the packet produces *no* output;
    pairing it with content constraints (``wire``/``fields``/an egress
    port) is contradictory — the replay checker never evaluates those
    constraints on a drop test, so they would silently pass, which is
    exactly the false confidence a regression suite must not give.
    """
    if e.forbid and (
        e.fields
        or e.wire is not None
        or e.egress_port is not None
        or e.egress_ports
    ):
        raise NetDebugError(
            f"suite {name!r}: expectation {index} "
            f"({e.label or 'unlabelled'}) sets forbid=True together with "
            "output constraints (wire/fields/egress); a drop test cannot "
            "also constrain the output it forbids"
        )


@dataclass
class RegressionSuite:
    """A frozen workload plus its expected outcomes."""

    name: str
    frames: list[bytes]
    expectations: list[ExpectedOutput]

    def __post_init__(self) -> None:
        if len(self.frames) != len(self.expectations):
            raise NetDebugError(
                f"suite {self.name!r}: {len(self.frames)} frames vs "
                f"{len(self.expectations)} expectations"
            )
        for index, expectation in enumerate(self.expectations):
            _check_expectation(self.name, index, expectation)

    # -- persistence -----------------------------------------------------
    def save(self, directory: str | Path) -> tuple[Path, Path]:
        """Write ``<name>.pcap`` and ``<name>.expect.json`` files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        pcap_path = directory / f"{self.name}.pcap"
        json_path = directory / f"{self.name}.expect.json"
        write_pcap(
            pcap_path,
            [
                PcapRecord(frame, timestamp_us=index)
                for index, frame in enumerate(self.frames)
            ],
        )
        json_path.write_text(
            json.dumps(
                {
                    "name": self.name,
                    "expectations": [
                        _expectation_to_dict(e) for e in self.expectations
                    ],
                },
                indent=2,
            )
        )
        return pcap_path, json_path

    @classmethod
    def load(cls, directory: str | Path, name: str) -> "RegressionSuite":
        """Read a suite previously written by :meth:`save`.

        Truncated captures (records whose ``incl_len`` is short of
        ``orig_len``) are rejected: replaying a frame prefix as if it
        were the full frame would diff against expectations recorded
        for the complete packet and report phantom divergences.
        """
        directory = Path(directory)
        records = read_pcap(directory / f"{name}.pcap")
        truncated = [
            index for index, record in enumerate(records) if record.truncated
        ]
        if truncated:
            listing = ", ".join(str(i) for i in truncated[:8])
            more = "…" if len(truncated) > 8 else ""
            raise NetDebugError(
                f"suite {name!r}: pcap records [{listing}{more}] are "
                "truncated captures (incl_len < orig_len); refusing to "
                "replay partial frames as full packets"
            )
        frames = [record.data for record in records]
        payload = json.loads(
            (directory / f"{name}.expect.json").read_text()
        )
        return cls(
            name=payload["name"],
            frames=frames,
            expectations=[
                _expectation_from_dict(e) for e in payload["expectations"]
            ],
        )


def record_suite(
    device: NetworkDevice,
    frames: list[bytes],
    name: str = "regression",
    oracle_factory: OracleFactory | None = None,
    ports: list[int] | None = None,
) -> RegressionSuite:
    """Freeze a workload against the device's *current* program spec.

    Expectations come from a reference oracle on the loaded program
    (including its installed table entries), so the suite captures
    intended behaviour — replaying it on a target whose implementation
    diverges from that spec fails, which is the point.
    ``oracle_factory`` overrides the default
    :class:`~repro.netdebug.oracle.StatelessOracle` (frames are fed in
    list order, so a stateful factory records connection-dependent
    expectations); ``ports`` pins per-frame ingress ports, which a
    replay must then repeat via :func:`replay_suite`.
    """
    factory = oracle_factory or StatelessOracle
    oracle = factory(device.program, num_ports=len(device.ports))
    expectations = oracle.expect_all(
        frames, ingress_ports=ports, label=name
    )
    return RegressionSuite(name, list(frames), expectations)


def replay_suite(
    device: NetworkDevice,
    suite: RegressionSuite,
    timestamps: list[int] | None = None,
    ports: list[int] | None = None,
) -> SessionReport:
    """Replay a frozen suite on ``device`` and report divergences.

    ``timestamps`` re-applies the original per-frame injection times
    (device-clock cycles). Recorded expectations pin exact output
    bytes, so suites captured under a workload-defined arrival process
    only replay faithfully for time-stamping programs (e.g.
    ``int_telemetry``) when injection happens at the same timestamps.
    ``ports`` likewise re-applies the original per-frame ingress ports
    (frames beyond the list fall back to port 0) — directional suites
    replay on the ports they were recorded on or not at all.
    """
    checker = OutputChecker(device)
    ports_covered = len(ports) if ports is not None else 0
    with checker:
        for index, (frame, expectation) in enumerate(
            zip(suite.frames, suite.expectations)
        ):
            checker.arm(expectation)
            device.inject(
                frame,
                port=ports[index] if index < ports_covered else 0,
                timestamp=(
                    timestamps[index]
                    if timestamps is not None and index < len(timestamps)
                    else None
                ),
            )
            checker.disarm()
    return SessionReport(
        session=f"replay-{suite.name}",
        device=device.name,
        program=device.program.name,
        checks=checker.outcomes(),
        findings=list(checker.findings),
        streams=dict(checker.streams),
        latency=checker.latency,
        injected=len(suite.frames),
        observed=checker.observed,
    )
