"""Result types for NetDebug validation runs.

Everything the software tool collects funnels into these dataclasses: per
check-rule outcomes, per-stream sequence accounting, latency statistics,
and an overall session verdict with a printable summary.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "Capability",
    "CanonicalJsonReport",
    "CheckOutcome",
    "Finding",
    "StreamStats",
    "LatencyStats",
    "SessionReport",
]


class CanonicalJsonReport:
    """Canonical JSON serialization shared by the report classes.

    Mixin for dataclasses exposing ``to_dict``/``from_dict``. Provides
    the byte-stable rendering (``to_json``: sorted keys, fixed
    separators — two identical runs produce identical bytes), its exact
    inverse (``from_json(x).to_json() == x``, the contract the
    cross-version differ and the committed golden baselines rely on),
    and the pretty on-disk round trip (``save``/``load``). One
    definition keeps every baseline file's format in lockstep.
    """

    def to_dict(self) -> dict:  # pragma: no cover - subclass contract
        raise NotImplementedError

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))  # type: ignore[attr-defined]

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path):
        return cls.from_dict(  # type: ignore[attr-defined]
            json.loads(Path(path).read_text())
        )


class Capability(str, Enum):
    """Figure 2 capability grades."""

    FULL = "full"
    PARTIAL = "partial"
    NONE = "none"

    @classmethod
    def from_score(cls, score: float) -> "Capability":
        """Map a 0..1 challenge-suite score onto a grade."""
        if score >= 0.9:
            return cls.FULL
        if score >= 0.25:
            return cls.PARTIAL
        return cls.NONE


@dataclass
class CheckOutcome:
    """Aggregate result of one checker rule."""

    rule: str
    checked: int = 0
    passed: int = 0
    failed: int = 0
    first_failure: str = ""

    @property
    def ok(self) -> bool:
        return self.failed == 0


@dataclass(frozen=True)
class Finding:
    """One detected problem, with enough context to act on.

    ``kind`` examples: ``check_failed``, ``unexpected_output``,
    ``missing_output``, ``sequence_loss``, ``target_deviation``,
    ``fault_localized``, ``limit_mismatch``.
    """

    kind: str
    message: str
    stage: str = ""
    stream_id: int | None = None


@dataclass
class StreamStats:
    """Per-stream sequence accounting from probe headers."""

    stream_id: int
    sent: int = 0
    received: int = 0
    lost: int = 0
    reordered: int = 0
    duplicated: int = 0
    last_seq: int | None = None
    seen: set = field(default_factory=set)

    def record_rx(self, seq_no: int) -> None:
        self.received += 1
        if seq_no in self.seen:
            self.duplicated += 1
        else:
            self.seen.add(seq_no)
        if self.last_seq is not None and seq_no < self.last_seq:
            self.reordered += 1
        self.last_seq = (
            seq_no if self.last_seq is None else max(self.last_seq, seq_no)
        )

    def finalize(self) -> None:
        self.lost = max(0, self.sent - len(self.seen))


@dataclass
class LatencyStats:
    """In-device latency distribution, in clock cycles."""

    samples: list[int] = field(default_factory=list)

    def record(self, cycles: int) -> None:
        self.samples.append(cycles)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def p50(self) -> float:
        return (
            statistics.median(self.samples) if self.samples else 0.0
        )

    @property
    def p99(self) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(len(ordered) * 0.99))
        return float(ordered[index])

    @property
    def max(self) -> int:
        return max(self.samples) if self.samples else 0

    def to_microseconds(self, clock_mhz: int) -> dict[str, float]:
        if clock_mhz <= 0:
            raise ValueError(
                f"clock_mhz must be positive, got {clock_mhz!r}"
            )
        scale = 1.0 / clock_mhz  # cycles -> microseconds
        return {
            "mean_us": self.mean * scale,
            "p50_us": self.p50 * scale,
            "p99_us": self.p99 * scale,
            "max_us": self.max * scale,
        }


@dataclass
class SessionReport:
    """Everything one validation session produced."""

    session: str
    device: str
    program: str
    checks: list[CheckOutcome] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    streams: dict[int, StreamStats] = field(default_factory=dict)
    latency: LatencyStats = field(default_factory=LatencyStats)
    injected: int = 0
    observed: int = 0
    measurements: dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when no check failed and nothing was found."""
        return all(c.ok for c in self.checks) and not self.findings

    def findings_of(self, kind: str) -> list[Finding]:
        return [f for f in self.findings if f.kind == kind]

    def to_dict(self) -> dict:
        """JSON-compatible dump for archival and regression diffing."""
        return {
            "session": self.session,
            "device": self.device,
            "program": self.program,
            "passed": self.passed,
            "injected": self.injected,
            "observed": self.observed,
            "checks": [
                {
                    "rule": c.rule,
                    "checked": c.checked,
                    "passed": c.passed,
                    "failed": c.failed,
                    "first_failure": c.first_failure,
                }
                for c in self.checks
            ],
            "findings": [
                {
                    "kind": f.kind,
                    "message": f.message,
                    "stage": f.stage,
                    "stream_id": f.stream_id,
                }
                for f in self.findings
            ],
            "streams": {
                str(stream_id): {
                    "sent": s.sent,
                    "received": s.received,
                    "lost": s.lost,
                    "reordered": s.reordered,
                    "duplicated": s.duplicated,
                }
                for stream_id, s in self.streams.items()
            },
            "latency": {
                "count": self.latency.count,
                "mean": self.latency.mean,
                "p50": self.latency.p50,
                "p99": self.latency.p99,
                "max": self.latency.max,
                "samples": list(self.latency.samples),
            },
            "measurements": dict(self.measurements),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionReport":
        """Rebuild a report serialized by :meth:`to_dict`.

        The round trip preserves everything :meth:`to_dict` emits;
        per-stream sequence bookkeeping (``seen``/``last_seq``) is
        summary-only in the dump and is not reconstructed.
        """
        report = cls(
            session=data["session"],
            device=data["device"],
            program=data["program"],
            injected=data.get("injected", 0),
            observed=data.get("observed", 0),
            measurements={
                k: float(v)
                for k, v in data.get("measurements", {}).items()
            },
        )
        for c in data.get("checks", []):
            report.checks.append(
                CheckOutcome(
                    rule=c["rule"],
                    checked=c.get("checked", 0),
                    passed=c.get("passed", 0),
                    failed=c.get("failed", 0),
                    first_failure=c.get("first_failure", ""),
                )
            )
        for f in data.get("findings", []):
            report.findings.append(
                Finding(
                    kind=f["kind"],
                    message=f.get("message", ""),
                    stage=f.get("stage", ""),
                    stream_id=f.get("stream_id"),
                )
            )
        for stream_id, s in data.get("streams", {}).items():
            sid = int(stream_id)
            report.streams[sid] = StreamStats(
                stream_id=sid,
                sent=s.get("sent", 0),
                received=s.get("received", 0),
                lost=s.get("lost", 0),
                reordered=s.get("reordered", 0),
                duplicated=s.get("duplicated", 0),
            )
        report.latency = LatencyStats(
            samples=[int(x) for x in data.get("latency", {}).get(
                "samples", [])]
        )
        return report

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"NetDebug session {self.session!r} on {self.device} "
            f"(program {self.program})",
            f"  injected={self.injected} observed={self.observed} "
            f"verdict={'PASS' if self.passed else 'FAIL'}",
        ]
        for check in self.checks:
            status = "ok" if check.ok else f"FAILED x{check.failed}"
            lines.append(
                f"  check {check.rule!r}: {check.checked} packets, {status}"
            )
            if check.first_failure:
                lines.append(f"    first failure: {check.first_failure}")
        for stream in self.streams.values():
            lines.append(
                f"  stream {stream.stream_id}: sent={stream.sent} "
                f"rx={stream.received} lost={stream.lost} "
                f"reordered={stream.reordered} dup={stream.duplicated}"
            )
        if self.latency.count:
            lines.append(
                f"  latency cycles: mean={self.latency.mean:.1f} "
                f"p50={self.latency.p50:.0f} p99={self.latency.p99:.0f} "
                f"max={self.latency.max}"
            )
        for key, value in self.measurements.items():
            lines.append(f"  {key} = {value:.4g}")
        for finding in self.findings:
            where = f" @{finding.stage}" if finding.stage else ""
            lines.append(f"  finding [{finding.kind}]{where}: "
                         f"{finding.message}")
        return "\n".join(lines)
