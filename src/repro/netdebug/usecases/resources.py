"""Use case: resources quantification (§3).

"Evaluating the consumption of hardware resources."

The challenge: report LUT/FF/BRAM/DSP usage and device utilization for a
suite of programs, and predict whether a candidate program fits the
device. NetDebug reads this through the dedicated management interface;
neither a traffic box nor a spec-level verifier can see it at all —
Figure 2's two hard "none" columns.
"""

from __future__ import annotations

from ...exceptions import CompileError
from ...p4.stdlib import PROGRAMS
from ...target.sdnet import make_sdnet_device
from ..controller import NetDebugController
from .base import Challenge, UseCaseResult, score_suite

__all__ = ["run", "resource_sweep"]


def resource_sweep() -> dict[str, dict]:
    """Compile every stdlib program on the SDNet target; read resources.

    Returns per-program resource/utilization dicts; programs the target
    rejects are recorded with the rejection reason.
    """
    results: dict[str, dict] = {}
    for name, factory in PROGRAMS.items():
        device = make_sdnet_device(f"rsrc-{name}")
        try:
            device.load(factory())
        except CompileError as exc:
            results[name] = {"fits": False, "reason": str(exc).splitlines()[0]}
            continue
        controller = NetDebugController(device)
        info = controller.read_resources()
        info["fits"] = all(v <= 1.0 for v in info["utilization"].values())
        results[name] = info
    return results


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the resources-quantification suite for one tool."""
    if tool == "netdebug":
        sweep = resource_sweep()
        reported = sum(1 for info in sweep.values() if "luts" in info)
        rejected = sum(1 for info in sweep.values() if "luts" not in info)
        ok = reported > 0 and all(
            info["luts"] > 0 for info in sweep.values() if "luts" in info
        )
        challenges = [
            Challenge(
                "per-program-usage",
                1.0 if ok else 0.0,
                f"{reported} programs quantified, {rejected} rejected by "
                "the target",
            ),
            Challenge(
                "utilization",
                1.0 if ok else 0.0,
                "fractional utilization per resource class",
            ),
            Challenge(
                "fits-prediction",
                1.0 if ok else 0.0,
                "capacity check before deployment",
            ),
        ]
    elif tool == "external":
        challenges = [
            Challenge(
                "per-program-usage", 0.0,
                "resource usage is invisible at the ports",
            ),
            Challenge("utilization", 0.0, "no management access"),
            Challenge("fits-prediction", 0.0, "no toolchain access"),
        ]
    elif tool == "formal":
        challenges = [
            Challenge(
                "per-program-usage", 0.0,
                "the specification has no resource footprint",
            ),
            Challenge("utilization", 0.0, "no target model"),
            Challenge("fits-prediction", 0.0, "no target model"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("resources", tool, challenges)
