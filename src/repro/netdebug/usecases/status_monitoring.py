"""Use case: status monitoring (§3).

"Providing periodic internal status information."

The challenge plays out in a live-traffic simulation: hosts exchange
traffic through the device while the NetDebug controller polls internal
status over the dedicated interface. Scoring requires (1) periodic
samples that track the true packet counts, (2) detection of an internal
drop burst that never manifests at the monitoring port, and (3) table
occupancy reporting. Only NetDebug has the channel; the baselines score
zero, as in Figure 2.
"""

from __future__ import annotations

from ...p4.stdlib import l2_switch
from ...packet.headers import mac
from ...sim.network import Network
from ...sim.traffic import constant_rate_times, default_flow, udp_stream
from ...target.faults import Fault, FaultKind
from ...target.reference import make_reference_device
from ..controller import NetDebugController
from .base import Challenge, UseCaseResult, score_suite

__all__ = ["run", "monitored_run"]


def monitored_run(
    packet_count: int = 120,
    rate_pps: float = 2e6,
    poll_period_ns: float = 10_000.0,
    fault_after: int | None = 60,
    seed: int = 0,
):
    """Drive live traffic through a monitored device.

    Returns ``(controller, host_rx, sent)`` after the simulation drains.
    When ``fault_after`` is set, a blackhole fault is injected mid-run so
    the status log shows a drop burst that external observers at the
    *monitoring* level cannot explain.
    """
    network = Network()
    device = make_reference_device("mon0")
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    network.add_device(device)
    network.add_host("h0")
    network.add_host("h1")
    network.connect("h0", "mon0", 0)
    network.connect("h1", "mon0", 1)

    controller = NetDebugController(device)
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip, dst_ip=flow.dst_ip,
        src_port=flow.src_port, dst_port=flow.dst_port,
        eth_dst=mac("02:00:00:00:00:02"),
    )
    packets = list(udp_stream(flow, packet_count, size=128, seed=seed))
    times = list(constant_rate_times(rate_pps, packet_count))
    for when, packet in zip(times, packets):
        network.send("h0", packet.pack(), at=when)

    if fault_after is not None and fault_after < packet_count:
        fault_time = times[fault_after]

        def inject_fault() -> None:
            device.injector.inject(
                Fault(FaultKind.BLACKHOLE, stage="ingress.0")
            )

        network.sim.schedule_at(fault_time, inject_fault)

    duration = times[-1] + 5_000.0
    controller.monitor(network.sim, poll_period_ns, duration)
    network.run()
    return controller, network.hosts["h1"].rx_count(), packet_count


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the status-monitoring suite for one tool."""
    if tool == "netdebug":
        controller, host_rx, sent = monitored_run(seed=seed)
        samples = controller.status_log
        periodic_ok = len(samples) >= 5
        final = samples[-1].status if samples else {}
        counts_ok = (
            final.get("stats", {}).get("processed", 0) == sent
        )
        # The drop burst must be visible in the sampled status deltas.
        drops_seen = [
            s.status["stats"]["dropped"] for s in samples
        ]
        drop_burst_detected = drops_seen and drops_seen[-1] > 0 and any(
            later > earlier
            for earlier, later in zip(drops_seen, drops_seen[1:])
        )
        occupancy_ok = bool(final.get("tables"))
        challenges = [
            Challenge(
                "periodic-sampling",
                1.0 if periodic_ok and counts_ok else 0.0,
                f"{len(samples)} samples; processed="
                f"{final.get('stats', {}).get('processed')} sent={sent}",
            ),
            Challenge(
                "internal-drop-burst",
                1.0 if drop_burst_detected else 0.0,
                f"drop counter trajectory {drops_seen[:3]}…"
                f"{drops_seen[-1:] if drops_seen else []}",
            ),
            Challenge(
                "table-occupancy",
                1.0 if occupancy_ok else 0.0,
                f"tables reported: {sorted(final.get('tables', {}))}",
            ),
        ]
    elif tool in ("external", "formal"):
        why = (
            "no dedicated interface to internal status"
            if tool == "external"
            else "static analysis has no runtime"
        )
        challenges = [
            Challenge("periodic-sampling", 0.0, why),
            Challenge("internal-drop-burst", 0.0, why),
            Challenge("table-occupancy", 0.0, why),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("status_monitoring", tool, challenges)
