"""Use case: functional testing (§3).

"Finding functional bugs in the data plane and in the control plane."

Five challenges spanning the visibility spectrum:

1. **spec-bug** — an ACL whose deny action is a no-op (program logic bug).
2. **control-plane-bug** — a route installed to the wrong port.
3. **target-bug** — the SDNet-like backend forwarding parser-rejected
   packets (the §4 case study).
4. **internal-blackhole** — a hardware fault eating packets mid-pipeline;
   full credit requires *locating* it, not just noticing loss.
5. **internal-accounting** — verifying in-device counters match the
   traffic actually processed.

NetDebug handles all five; the formal verifier sees only what the
specification shows (1, 2); the external tester sees externally visible
effects (1, 2, 3) and half of 4.
"""

from __future__ import annotations

from ...baselines.external_tester import ExternalTester
from ...baselines.formal import (
    Property,
    SymbolicVerifier,
    prop_forwarded,
    prop_no_invalid_header_access,
)
from ...p4.stdlib import port_counter, strict_parser
from ...packet.headers import ipv4
from ...sim.traffic import default_flow, malformed_mix, udp_stream
from ...target.faults import Fault, FaultKind
from ...target.reference import make_reference_device
from ...target.sdnet import make_sdnet_device
from ..checker import ExpectedOutput
from ..controller import NetDebugController
from ..generator import StreamSpec
from ..localization import localize
from ..session import ValidationSession
from .base import Challenge, UseCaseResult, score_suite
from .workloads import (
    allowed_packet,
    buggy_acl_program,
    denied_packet,
    install_acl_intent,
    router_with_entry,
)

__all__ = ["run"]

INTENT_ROUTE_PORT = 2
WRONG_ROUTE_PORT = 3


# ----------------------------------------------------------------------
# Challenge 1: spec bug (broken deny action)
# ----------------------------------------------------------------------
def _spec_bug_netdebug() -> Challenge:
    program = buggy_acl_program()
    install_acl_intent(program)
    device = make_reference_device("fn-spec")
    device.load(program)
    controller = NetDebugController(device)
    from ...packet.builder import parse_ethernet

    session = ValidationSession(
        name="acl-intent",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=[
                    parse_ethernet(denied_packet()),
                    parse_ethernet(allowed_packet()),
                ],
                fix_checksums=False,
            )
        ],
        expectations=[
            ExpectedOutput(forbid=True, label="denied-must-drop"),
            ExpectedOutput(egress_port=1, label="allowed-to-uplink"),
        ],
    )
    report = controller.run(session)
    detected = bool(report.findings_of("unexpected_output"))
    return Challenge(
        "spec-bug", 1.0 if detected else 0.0,
        "no-op deny action leaks denied traffic",
    )


def _spec_bug_formal() -> Challenge:
    program = buggy_acl_program()
    install_acl_intent(program)
    deny_src = ipv4("10.0.0.0")

    def denied_is_dropped(result) -> bool:
        packet = result.packet
        if packet is None or not packet.has("ipv4") or not packet.has("udp"):
            return True
        matches_deny = (
            (packet.get("ipv4")["src_addr"] & 0xFF000000) == deny_src
            and packet.get("udp")["dst_port"] == 53
        )
        return not matches_deny  # forwarded packets must not match deny

    report = SymbolicVerifier(program).verify(
        [
            prop_no_invalid_header_access(),
            prop_forwarded(
                "deny-rule-enforced",
                denied_is_dropped,
                "packets matching the deny intent are never forwarded",
            ),
        ]
    )
    detected = bool(report.violations_of("deny-rule-enforced"))
    return Challenge("spec-bug", 1.0 if detected else 0.0,
                     "verifier finds counterexample on the spec")


def _spec_bug_external() -> Challenge:
    program = buggy_acl_program()
    install_acl_intent(program)
    device = make_reference_device("fn-spec-ext")
    device.load(program)
    tester = ExternalTester(device)
    report = tester.run_vectors(
        [
            (denied_packet(), 0, None, None),
            (allowed_packet(), 0, allowed_packet(), 1),
        ]
    )
    detected = report.unexpected > 0
    return Challenge("spec-bug", 1.0 if detected else 0.0,
                     "denied frame emerged at a port")


# ----------------------------------------------------------------------
# Challenge 2: control-plane bug (wrong egress port installed)
# ----------------------------------------------------------------------
def _route_packet() -> bytes:
    from ...packet.builder import udp_packet

    return udp_packet(
        ipv4("10.7.7.7"), ipv4("172.16.0.5"), 9000, 1000, payload=b"r"
    ).pack()


def _cp_bug_netdebug() -> Challenge:
    program = router_with_entry(WRONG_ROUTE_PORT)
    device = make_reference_device("fn-cp")
    device.load(program)
    from ...packet.builder import parse_ethernet

    session = ValidationSession(
        name="route-intent",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=[parse_ethernet(_route_packet())],
                fix_checksums=False,
            )
        ],
        expectations=[
            ExpectedOutput(
                egress_port=INTENT_ROUTE_PORT, label="route-to-port-2"
            )
        ],
    )
    report = NetDebugController(device).run(session)
    detected = bool(report.findings_of("output_mismatch"))
    return Challenge("control-plane-bug", 1.0 if detected else 0.0,
                     "egress differs from operator intent")


def _cp_bug_formal() -> Challenge:
    program = router_with_entry(WRONG_ROUTE_PORT)

    def routed_to_intent(result) -> bool:
        packet = result.packet
        if packet is None or not packet.has("ipv4"):
            return True
        in_prefix = (packet.get("ipv4")["dst_addr"] >> 24) == 10
        if not in_prefix:
            return True
        return result.metadata.get("egress_spec") == INTENT_ROUTE_PORT

    report = SymbolicVerifier(program).verify(
        [
            prop_forwarded(
                "route-intent",
                routed_to_intent,
                "10.0.0.0/8 traffic egresses on port 2",
            )
        ]
    )
    detected = bool(report.violations_of("route-intent"))
    return Challenge("control-plane-bug", 1.0 if detected else 0.0,
                     "spec+entries violate the intent property")


def _cp_bug_external() -> Challenge:
    program = router_with_entry(WRONG_ROUTE_PORT)
    device = make_reference_device("fn-cp-ext")
    device.load(program)
    tester = ExternalTester(device)
    captured = tester.send(_route_packet(), 0)
    detected = bool(captured) and captured[0].port != INTENT_ROUTE_PORT
    return Challenge("control-plane-bug", 1.0 if detected else 0.0,
                     "frame captured on the wrong port")


# ----------------------------------------------------------------------
# Challenge 3: target bug (reject state not implemented)
# ----------------------------------------------------------------------
def _target_bug_netdebug(seed: int) -> Challenge:
    device = make_sdnet_device("fn-tgt")
    device.load(strict_parser())
    packets = [p for p, _ in malformed_mix(default_flow(), 30, 0.5, seed)]
    session = ValidationSession(
        name="reject-enforcement",
        streams=[
            StreamSpec(stream_id=1, packets=packets, fix_checksums=False)
        ],
        use_reference_oracle=True,
    )
    report = NetDebugController(device).run(session)
    detected = bool(report.findings_of("unexpected_output"))
    return Challenge("target-bug", 1.0 if detected else 0.0,
                     "parser-rejected packets observed at output tap")


def _target_bug_formal() -> Challenge:
    from ...baselines.formal import prop_rejected_never_forwarded

    report = SymbolicVerifier(strict_parser()).verify(
        [prop_rejected_never_forwarded()]
    )
    # The spec satisfies the property, so the verifier reports PASS:
    # the target bug is invisible at this analysis level.
    detected = not report.passed
    return Challenge(
        "target-bug",
        1.0 if detected else 0.0,
        "spec-level analysis cannot see the backend deviation",
    )


def _target_bug_external(seed: int) -> Challenge:
    device = make_sdnet_device("fn-tgt-ext")
    device.load(strict_parser())
    tester = ExternalTester(device)
    vectors = []
    for packet, malformed in malformed_mix(default_flow(), 30, 0.5, seed):
        wire = packet.pack()
        vectors.append(
            (wire, 0, None, None) if malformed else (wire, 0, wire, 1)
        )
    report = tester.run_vectors(vectors)
    detected = report.unexpected > 0
    return Challenge("target-bug", 1.0 if detected else 0.0,
                     "malformed frames captured at external ports")


# ----------------------------------------------------------------------
# Challenge 4: internal blackhole — detect AND locate
# ----------------------------------------------------------------------
def _blackhole_device(name: str):
    device = make_reference_device(name)
    device.load(router_with_entry(INTENT_ROUTE_PORT))
    device.injector.inject(
        Fault(FaultKind.BLACKHOLE, stage="ingress.0")
    )
    return device


def _blackhole_netdebug() -> Challenge:
    device = _blackhole_device("fn-bh")
    result = localize(device, _route_packet())
    located = result.found and result.stage == "ingress.0"
    return Challenge(
        "internal-blackhole",
        1.0 if located else (0.5 if result.found else 0.0),
        str(result),
    )


def _blackhole_formal() -> Challenge:
    # The specification has no fault in it; nothing to find.
    program = router_with_entry(INTENT_ROUTE_PORT)
    report = SymbolicVerifier(program).verify(
        [prop_no_invalid_header_access()]
    )
    return Challenge(
        "internal-blackhole",
        0.0 if report.passed else 0.0,
        "faults live below the specification",
    )


def _blackhole_external() -> Challenge:
    device = _blackhole_device("fn-bh-ext")
    tester = ExternalTester(device)
    captured = tester.send(_route_packet(), 0)
    noticed_loss = not captured
    # Detection yes, localization impossible: half credit.
    return Challenge(
        "internal-blackhole",
        0.5 if noticed_loss else 0.0,
        "loss visible externally; location is not",
    )


# ----------------------------------------------------------------------
# Challenge 5: internal accounting (counters must match traffic)
# ----------------------------------------------------------------------
def _accounting_netdebug(seed: int) -> Challenge:
    device = make_reference_device("fn-acct")
    device.load(port_counter(num_ports=8))
    controller = NetDebugController(device)
    packets = list(udp_stream(default_flow(), 25, size=128, seed=seed))
    session = ValidationSession(
        name="counter-audit",
        streams=[StreamSpec(stream_id=1, packets=packets)],
    )
    controller.run(session)
    counted = controller.device.control_plane.counter_read(
        "per_port_pkts", 0
    )
    verified = counted == len(packets)
    return Challenge(
        "internal-accounting",
        1.0 if verified else 0.0,
        f"counter={counted} expected={len(packets)}",
    )


def _accounting_unavailable(tool: str) -> Challenge:
    return Challenge(
        "internal-accounting",
        0.0,
        f"{tool} has no access to in-device counters",
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the functional-testing suite for one tool."""
    if tool == "netdebug":
        challenges = [
            _spec_bug_netdebug(),
            _cp_bug_netdebug(),
            _target_bug_netdebug(seed),
            _blackhole_netdebug(),
            _accounting_netdebug(seed),
        ]
    elif tool == "formal":
        challenges = [
            _spec_bug_formal(),
            _cp_bug_formal(),
            _target_bug_formal(),
            _blackhole_formal(),
            _accounting_unavailable("formal verification"),
        ]
    elif tool == "external":
        challenges = [
            _spec_bug_external(),
            _cp_bug_external(),
            _target_bug_external(seed),
            _blackhole_external(),
            _accounting_unavailable("an external tester"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("functional", tool, challenges)
