"""Use case: compiler check (§3).

"Finding limitations in the compiler."

Three challenges against the SDNet-like toolchain:

1. **reject-state** — the compiler accepts parsers using ``reject`` but
   the generated datapath forwards rejected packets (the §4 discovery).
   NetDebug finds it by differential testing against the spec oracle.
2. **verify-ignored** — ``verify`` statements compile but never fire,
   the same deviation through a different language construct.
3. **range-match** — RANGE table keys are refused at compile time; the
   check must surface the documented limitation.

The formal verifier never touches the compiler at all; the external
tester can observe the externally visible half of (1)/(2) but cannot
attribute it, and never sees (3).
"""

from __future__ import annotations

from ...exceptions import CompileError
from ...baselines.external_tester import ExternalTester
from ...baselines.formal import SymbolicVerifier, prop_rejected_never_forwarded
from ...p4.actions import Drop, Forward
from ...p4.dsl import ProgramBuilder
from ...p4.expr import Const, fld
from ...p4.program import P4Program
from ...p4.stdlib import strict_parser
from ...p4.table import MatchKind
from ...packet.builder import udp_packet
from ...packet.headers import ETHERNET, ETHERTYPE_IPV4, IPV4, UDP, ipv4
from ...p4.parser import ACCEPT
from ...sim.traffic import default_flow, malformed_mix
from ...target.sdnet import REJECT_NOT_IMPLEMENTED, SDNetCompiler, make_sdnet_device
from ..controller import NetDebugController
from ..generator import StreamSpec
from ..session import ValidationSession
from .base import Challenge, UseCaseResult, score_suite

__all__ = ["run", "range_match_program", "verify_only_program"]


def range_match_program() -> P4Program:
    """A program using a RANGE key — unsupported by the SDNet target."""
    b = ProgramBuilder("range_match")
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).goto("parse_udp")
    b.parser_state("parse_udp", extracts=["udp"]).accept()
    table = b.ingress.table("port_ranges")
    table.key(fld("udp", "dst_port"), MatchKind.RANGE, "dport")
    table.action("to_cpu", [], [Forward(Const(0, 9))])
    table.action("drop_packet", [], [Drop()])
    table.default("drop_packet").size(16)
    b.ingress.apply("port_ranges")
    b.emit("ethernet", "ipv4", "udp")
    return b.build()


def verify_only_program() -> P4Program:
    """Accepts IPv4 but relies on ``verify`` alone to reject bad headers."""
    from ...p4.types import PARSER_ERROR_VERIFY_FAILED

    b = ProgramBuilder("verify_only")
    b.header(ETHERNET)
    b.header(IPV4)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).verify(
        fld("ipv4", "version").eq(4),
        PARSER_ERROR_VERIFY_FAILED,
    ).accept()
    b.ingress.action("out", [], [Forward(Const(1, 9))])
    b.ingress.call("out")
    b.emit("ethernet", "ipv4")
    return b.build()


def _bad_version_packet() -> bytes:
    packet = udp_packet(
        ipv4("10.2.2.2"), ipv4("10.1.1.1"), 80, 2000, payload=b"v6?"
    )
    packet.get("ipv4")["version"] = 6
    return packet.pack()


# ----------------------------------------------------------------------
# NetDebug: differential testing against the reference oracle
# ----------------------------------------------------------------------
def _reject_state_netdebug(seed: int) -> Challenge:
    device = make_sdnet_device("cc-reject")
    device.load(strict_parser())
    packets = [p for p, _ in malformed_mix(default_flow(), 24, 0.6, seed)]
    session = ValidationSession(
        name="compiler-reject-check",
        streams=[StreamSpec(stream_id=1, packets=packets,
                            fix_checksums=False)],
        use_reference_oracle=True,
    )
    report = NetDebugController(device).run(session)
    detected = bool(report.findings_of("unexpected_output"))
    # Cross-check against the backend's ground truth.
    truth = REJECT_NOT_IMPLEMENTED in device.compiled.silent_deviations
    return Challenge(
        "reject-state",
        1.0 if detected and truth else 0.0,
        "differential test exposes the unimplemented reject state",
    )


def _verify_ignored_netdebug() -> Challenge:
    device = make_sdnet_device("cc-verify")
    device.load(verify_only_program())
    from ...packet.builder import parse_ethernet

    session = ValidationSession(
        name="compiler-verify-check",
        streams=[
            StreamSpec(
                stream_id=1,
                packets=[parse_ethernet(_bad_version_packet())],
                fix_checksums=False,
            )
        ],
        use_reference_oracle=True,
    )
    report = NetDebugController(device).run(session)
    detected = bool(report.findings_of("unexpected_output"))
    return Challenge(
        "verify-ignored",
        1.0 if detected else 0.0,
        "failed verify still forwards on the target",
    )


def _range_match_netdebug() -> Challenge:
    try:
        SDNetCompiler().compile(range_match_program())
    except CompileError as exc:
        return Challenge(
            "range-match", 1.0, f"limitation surfaced: {exc}".splitlines()[0]
        )
    return Challenge("range-match", 0.0, "compiler accepted a RANGE key")


# ----------------------------------------------------------------------
# External tester: sees symptoms at the ports, never the cause
# ----------------------------------------------------------------------
def _reject_state_external(seed: int) -> Challenge:
    device = make_sdnet_device("cc-reject-ext")
    device.load(strict_parser())
    tester = ExternalTester(device)
    vectors = []
    for packet, malformed in malformed_mix(default_flow(), 24, 0.6, seed):
        wire = packet.pack()
        vectors.append(
            (wire, 0, None, None) if malformed else (wire, 0, wire, 1)
        )
    report = tester.run_vectors(vectors)
    # Symptom observed, but no attribution to the compiler vs the
    # program vs the control plane: half credit.
    return Challenge(
        "reject-state",
        0.5 if report.unexpected else 0.0,
        "leak visible externally; cause not attributable",
    )


def _verify_ignored_external() -> Challenge:
    device = make_sdnet_device("cc-verify-ext")
    device.load(verify_only_program())
    tester = ExternalTester(device)
    report = tester.run_vectors([(_bad_version_packet(), 0, None, None)])
    return Challenge(
        "verify-ignored",
        0.5 if report.unexpected else 0.0,
        "symptom only",
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the compiler-check suite for one tool."""
    if tool == "netdebug":
        challenges = [
            _reject_state_netdebug(seed),
            _verify_ignored_netdebug(),
            _range_match_netdebug(),
        ]
    elif tool == "formal":
        # The verifier analyses programs, not toolchains: each challenge
        # amounts to proving the *spec* correct, which it is.
        reject_spec = SymbolicVerifier(strict_parser()).verify(
            [prop_rejected_never_forwarded()]
        )
        verify_spec = SymbolicVerifier(verify_only_program()).verify(
            [prop_rejected_never_forwarded()]
        )
        challenges = [
            Challenge(
                "reject-state",
                0.0 if reject_spec.passed else 1.0,
                "spec provably drops rejects; compiler never examined",
            ),
            Challenge(
                "verify-ignored",
                0.0 if verify_spec.passed else 1.0,
                "spec provably enforces verify; compiler never examined",
            ),
            Challenge("range-match", 0.0, "no compiler interaction at all"),
        ]
    elif tool == "external":
        challenges = [
            _reject_state_external(seed),
            _verify_ignored_external(),
            Challenge("range-match", 0.0,
                      "a traffic box cannot run the compiler"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("compiler_check", tool, challenges)
