"""Use case: architecture check (§3).

"Finding limitations in the architecture."

Probing challenges against each target's published limits
(:class:`~repro.target.limits.ArchLimits`):

1. **parse-depth** — discover the deepest parse chain a target accepts
   by compiling a ladder of programs; confirm the found limit matches
   (or exposes a mismatch in) the published figure.
2. **table-capacity** — fill a table to its claimed size through the
   control plane and verify both the capacity and the over-capacity
   rejection behave as published.
3. **match-kinds** — discover which match kinds a target actually
   builds.
4. **tcam-budget** — discover the Tofino-like target's per-stage TCAM
   key-bit budget by compiling ever-wider ternary keys.
5. **backend-deviations** — compile canary programs on all three
   registered backends and localize each declared silent deviation to
   its pipeline stage via the deviation capability map
   (:data:`repro.netdebug.localization.DEVIATION_CAPABILITIES`) — the
   "which backend deviates, and why" answer a 3-way sweep needs.

These need compiler and management access, which only NetDebug's
workflow has. The external tester can black-box a limit's *symptoms* at
best; the formal verifier has no notion of a target.
"""

from __future__ import annotations

from ...exceptions import CompileError, ControlPlaneError
from ...p4.actions import Forward
from ...p4.dsl import ProgramBuilder
from ...p4.expr import Const, fld
from ...p4.program import P4Program
from ...p4.stdlib import acl_firewall, strict_parser
from ...p4.table import MatchKind
from ...packet.fields import HeaderSpec
from ...target.limits import REFERENCE_LIMITS, SDNET_LIMITS, TOFINO_LIMITS
from ...target.reference import ReferenceCompiler
from ...target.sdnet import SDNetCompiler, make_sdnet_device
from ...target.tofino import TofinoCompiler
from ..localization import diagnose_deviations
from .base import Challenge, UseCaseResult, score_suite

__all__ = [
    "run",
    "chain_program",
    "probe_parse_depth",
    "probe_table_capacity",
    "probe_match_kinds",
    "probe_tcam_stage_budget",
    "probe_backend_deviations",
]


def _link_header(index: int) -> HeaderSpec:
    """A tiny chained header: 8-bit next-proto + 8-bit payload."""
    return HeaderSpec.build(f"link{index}", ("next_proto", 8), ("value", 8))


def chain_program(depth: int) -> P4Program:
    """A program whose parser extracts ``depth`` chained headers."""
    b = ProgramBuilder(f"chain_{depth}")
    for index in range(depth):
        b.header(_link_header(index))
    for index in range(depth):
        state = b.parser_state(
            "start" if index == 0 else f"parse{index}",
            extracts=[f"link{index}"],
        )
        if index + 1 < depth:
            state.goto(f"parse{index + 1}")
        else:
            state.accept()
    b.ingress.action("out", [], [Forward(Const(0, 9))])
    b.ingress.call("out")
    b.emit(*[f"link{i}" for i in range(depth)])
    return b.build()


def probe_parse_depth(max_probe: int = 24, compiler_factory=SDNetCompiler) -> int:
    """Largest parse depth the probed compiler accepts (SDNet by default)."""
    compiler = compiler_factory()
    deepest = 0
    for depth in range(1, max_probe + 1):
        try:
            compiler.compile(chain_program(depth))
            deepest = depth
        except CompileError:
            break
    return deepest


def exact_table_program(size: int) -> P4Program:
    """A one-table program with a declared capacity of ``size``."""
    from ...packet.headers import ETHERNET

    b = ProgramBuilder(f"cap_{size}")
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).accept()
    table = b.ingress.table("fwd")
    table.key(fld("ethernet", "dst_addr"), MatchKind.EXACT, "dmac")
    table.action("out", [], [Forward(Const(0, 9))])
    table.default("NoAction").size(size)
    b.ingress.apply("fwd")
    b.emit("ethernet")
    return b.build()


def probe_table_capacity(size: int) -> tuple[int, bool]:
    """Fill a size-``size`` table; returns (installed, overflow_rejected)."""
    device = make_sdnet_device(f"arch-cap-{size}")
    device.load(exact_table_program(size))
    installed = 0
    for index in range(size):
        device.control_plane.table_add("fwd", "out", [index], [])
        installed += 1
    try:
        device.control_plane.table_add("fwd", "out", [size], [])
        overflow_rejected = False
    except ControlPlaneError:
        overflow_rejected = True
    return installed, overflow_rejected


def probe_match_kinds(compiler_factory=SDNetCompiler) -> dict[str, bool]:
    """Which match kinds the probed target actually compiles."""
    from ...packet.headers import ETHERNET, IPV4, ETHERTYPE_IPV4
    from ...p4.parser import ACCEPT

    results: dict[str, bool] = {}
    for kind in MatchKind:
        b = ProgramBuilder(f"kind_{kind.value}")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet"]).select(
            fld("ethernet", "ether_type"),
            [(ETHERTYPE_IPV4, "parse_ipv4")],
            default=ACCEPT,
        )
        b.parser_state("parse_ipv4", extracts=["ipv4"]).accept()
        table = b.ingress.table("probe")
        table.key(fld("ipv4", "dst_addr"), kind, "dst")
        table.action("out", [], [Forward(Const(0, 9))])
        table.default("NoAction").size(16)
        from ...p4.control import ApplyTable, If
        from ...p4.expr import IsValid

        b.ingress.stmt(If(IsValid("ipv4"), ApplyTable("probe")))
        b.emit("ethernet", "ipv4")
        try:
            compiler_factory().compile(b.build())
            results[kind.value] = True
        except CompileError:
            results[kind.value] = False
    return results


def _wide_ternary_program(key_bits: int) -> P4Program:
    """A one-table program with a single ``key_bits``-wide ternary key."""
    b = ProgramBuilder(f"tcam_{key_bits}")
    b.header(HeaderSpec.build(f"wide{key_bits}", ("key", key_bits)))
    b.parser_state("start", extracts=[f"wide{key_bits}"]).accept()
    table = b.ingress.table("tcam")
    table.key(fld(f"wide{key_bits}", "key"), MatchKind.TERNARY, "key")
    table.action("out", [], [Forward(Const(0, 9))])
    table.default("NoAction").size(16)
    b.ingress.apply("tcam")
    b.emit(f"wide{key_bits}")
    return b.build()


def probe_tcam_stage_budget(
    max_probe_bits: int = 256, step: int = 8, compiler_factory=TofinoCompiler
) -> int:
    """Widest ternary key (in bits) the probed target builds in one stage."""
    compiler = compiler_factory()
    widest = 0
    for key_bits in range(step, max_probe_bits + 1, step):
        try:
            compiler.compile(_wide_ternary_program(key_bits))
            widest = key_bits
        except CompileError:
            break
    return widest


#: Canary programs that between them trip every known silent deviation:
#: ``strict_parser`` reaches ``reject`` and emits past the Tofino
#: deparse budget; ``acl_firewall`` adds ternary keys for the TCAM.
_DEVIATION_CANARIES = (strict_parser, acl_firewall)


def probe_backend_deviations() -> dict[str, dict[str, str]]:
    """Compile canaries on all three backends; localize declared deviations.

    Returns ``{target_name: {deviation_tag: pipeline_stage}}`` — the
    3-way sweep's answer to *which* backend deviates and *where*. The
    reference backend must come back empty.
    """
    compilers = (ReferenceCompiler, SDNetCompiler, TofinoCompiler)
    deviations: dict[str, dict[str, str]] = {}
    for compiler_factory in compilers:
        compiler = compiler_factory()
        per_target: dict[str, str] = {}
        for canary in _DEVIATION_CANARIES:
            compiled = compiler.compile(canary())
            for diagnosis in diagnose_deviations(compiled):
                per_target[diagnosis.tag] = diagnosis.stage
        deviations[compiler.limits.name] = per_target
    return deviations


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the architecture-check suite for one tool."""
    if tool == "netdebug":
        found_depth = probe_parse_depth()
        depth_ok = found_depth == SDNET_LIMITS.max_parse_depth
        size = 64
        installed, overflow_rejected = probe_table_capacity(size)
        capacity_ok = installed == size and overflow_rejected
        kinds = probe_match_kinds()
        kinds_ok = (
            kinds["exact"]
            and kinds["lpm"]
            and kinds["ternary"]
            and not kinds["range"]
        )
        tofino_depth = probe_parse_depth(compiler_factory=TofinoCompiler)
        tofino_kinds = probe_match_kinds(compiler_factory=TofinoCompiler)
        tcam_budget = probe_tcam_stage_budget()
        tofino_ok = (
            tofino_depth == TOFINO_LIMITS.max_parse_depth
            and all(tofino_kinds.values())
            and tcam_budget == TOFINO_LIMITS.tcam_bits_per_stage
        )
        # Keyed on the same ArchLimits .name constants the probe uses,
        # so a limits rename cannot silently zero this challenge.
        deviations = probe_backend_deviations()
        deviations_ok = (
            deviations.get(REFERENCE_LIMITS.name) == {}
            and deviations.get(SDNET_LIMITS.name, {}).get(
                "parser-reject-not-implemented"
            ) == "parser"
            and deviations.get(TOFINO_LIMITS.name, {}).get(
                "ternary-range-quantized-pow2"
            ) == "ingress"
            and deviations.get(TOFINO_LIMITS.name, {}).get(
                "deparse-field-budget-exceeded"
            ) == "deparser"
        )
        challenges = [
            Challenge(
                "parse-depth",
                1.0 if depth_ok else 0.0,
                f"probed limit {found_depth}, published "
                f"{SDNET_LIMITS.max_parse_depth}",
            ),
            Challenge(
                "table-capacity",
                1.0 if capacity_ok else 0.0,
                f"installed {installed}/{size}, overflow "
                f"{'rejected' if overflow_rejected else 'accepted!'}",
            ),
            Challenge(
                "match-kinds",
                1.0 if kinds_ok else 0.0,
                f"supported: {sorted(k for k, v in kinds.items() if v)}",
            ),
            Challenge(
                "tofino-envelope",
                1.0 if tofino_ok else 0.0,
                f"probed depth {tofino_depth}/"
                f"{TOFINO_LIMITS.max_parse_depth}, TCAM budget "
                f"{tcam_budget}/{TOFINO_LIMITS.tcam_bits_per_stage} bits, "
                f"kinds {sorted(k for k, v in tofino_kinds.items() if v)}",
            ),
            Challenge(
                "backend-deviations",
                1.0 if deviations_ok else 0.0,
                "; ".join(
                    f"{target}: "
                    + (
                        ", ".join(
                            f"{tag}@{stage}"
                            for tag, stage in sorted(tags.items())
                        )
                        or "spec-faithful"
                    )
                    for target, tags in sorted(deviations.items())
                ),
            ),
        ]
    elif tool == "external":
        challenges = [
            Challenge(
                "parse-depth",
                0.5,
                "can black-box deep header stacks, cannot see the "
                "compile-time limit",
            ),
            Challenge(
                "table-capacity",
                0.5,
                "can infer misses when entries silently vanish, cannot "
                "read occupancy",
            ),
            Challenge(
                "match-kinds", 0.0,
                "match-kind support is a toolchain property",
            ),
            Challenge(
                "tofino-envelope", 0.0,
                "per-stage TCAM budgets are a toolchain property",
            ),
            Challenge(
                "backend-deviations",
                0.5,
                "can observe end-to-end divergence, cannot attribute it "
                "to a backend stage",
            ),
        ]
    elif tool == "formal":
        challenges = [
            Challenge("parse-depth", 0.0, "no target model"),
            Challenge("table-capacity", 0.0, "no target model"),
            Challenge("match-kinds", 0.0, "no target model"),
            Challenge("tofino-envelope", 0.0, "no target model"),
            Challenge("backend-deviations", 0.0, "no target model"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("architecture_check", tool, challenges)
