"""Use case: architecture check (§3).

"Finding limitations in the architecture."

Three probing challenges against the SDNet-like target's published
limits (:data:`repro.target.limits.SDNET_LIMITS`, an
:class:`~repro.target.limits.ArchLimits`):

1. **parse-depth** — discover the deepest parse chain the target accepts
   by compiling a ladder of programs; confirm the found limit matches
   (or exposes a mismatch in) the published figure.
2. **table-capacity** — fill a table to its claimed size through the
   control plane and verify both the capacity and the over-capacity
   rejection behave as published.
3. **match-kinds** — discover which match kinds the target actually
   builds.

These need compiler and management access, which only NetDebug's
workflow has. The external tester can black-box a limit's *symptoms* at
best; the formal verifier has no notion of a target.
"""

from __future__ import annotations

from ...exceptions import CompileError, ControlPlaneError
from ...p4.actions import Forward
from ...p4.dsl import ProgramBuilder
from ...p4.expr import Const, fld
from ...p4.program import P4Program
from ...p4.table import MatchKind
from ...packet.fields import HeaderSpec
from ...target.limits import SDNET_LIMITS
from ...target.sdnet import SDNetCompiler, make_sdnet_device
from .base import Challenge, UseCaseResult, score_suite

__all__ = ["run", "chain_program", "probe_parse_depth", "probe_table_capacity"]


def _link_header(index: int) -> HeaderSpec:
    """A tiny chained header: 8-bit next-proto + 8-bit payload."""
    return HeaderSpec.build(f"link{index}", ("next_proto", 8), ("value", 8))


def chain_program(depth: int) -> P4Program:
    """A program whose parser extracts ``depth`` chained headers."""
    b = ProgramBuilder(f"chain_{depth}")
    for index in range(depth):
        b.header(_link_header(index))
    for index in range(depth):
        state = b.parser_state(
            "start" if index == 0 else f"parse{index}",
            extracts=[f"link{index}"],
        )
        if index + 1 < depth:
            state.goto(f"parse{index + 1}")
        else:
            state.accept()
    b.ingress.action("out", [], [Forward(Const(0, 9))])
    b.ingress.call("out")
    b.emit(*[f"link{i}" for i in range(depth)])
    return b.build()


def probe_parse_depth(max_probe: int = 24) -> int:
    """Largest parse depth the SDNet compiler accepts."""
    compiler = SDNetCompiler()
    deepest = 0
    for depth in range(1, max_probe + 1):
        try:
            compiler.compile(chain_program(depth))
            deepest = depth
        except CompileError:
            break
    return deepest


def exact_table_program(size: int) -> P4Program:
    """A one-table program with a declared capacity of ``size``."""
    from ...packet.headers import ETHERNET

    b = ProgramBuilder(f"cap_{size}")
    b.header(ETHERNET)
    b.parser_state("start", extracts=["ethernet"]).accept()
    table = b.ingress.table("fwd")
    table.key(fld("ethernet", "dst_addr"), MatchKind.EXACT, "dmac")
    table.action("out", [], [Forward(Const(0, 9))])
    table.default("NoAction").size(size)
    b.ingress.apply("fwd")
    b.emit("ethernet")
    return b.build()


def probe_table_capacity(size: int) -> tuple[int, bool]:
    """Fill a size-``size`` table; returns (installed, overflow_rejected)."""
    device = make_sdnet_device(f"arch-cap-{size}")
    device.load(exact_table_program(size))
    installed = 0
    for index in range(size):
        device.control_plane.table_add("fwd", "out", [index], [])
        installed += 1
    try:
        device.control_plane.table_add("fwd", "out", [size], [])
        overflow_rejected = False
    except ControlPlaneError:
        overflow_rejected = True
    return installed, overflow_rejected


def probe_match_kinds() -> dict[str, bool]:
    """Which match kinds the target actually compiles."""
    from ...packet.headers import ETHERNET, IPV4, ETHERTYPE_IPV4
    from ...p4.parser import ACCEPT

    results: dict[str, bool] = {}
    for kind in MatchKind:
        b = ProgramBuilder(f"kind_{kind.value}")
        b.header(ETHERNET)
        b.header(IPV4)
        b.parser_state("start", extracts=["ethernet"]).select(
            fld("ethernet", "ether_type"),
            [(ETHERTYPE_IPV4, "parse_ipv4")],
            default=ACCEPT,
        )
        b.parser_state("parse_ipv4", extracts=["ipv4"]).accept()
        table = b.ingress.table("probe")
        table.key(fld("ipv4", "dst_addr"), kind, "dst")
        table.action("out", [], [Forward(Const(0, 9))])
        table.default("NoAction").size(16)
        from ...p4.control import ApplyTable, If
        from ...p4.expr import IsValid

        b.ingress.stmt(If(IsValid("ipv4"), ApplyTable("probe")))
        b.emit("ethernet", "ipv4")
        try:
            SDNetCompiler().compile(b.build())
            results[kind.value] = True
        except CompileError:
            results[kind.value] = False
    return results


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the architecture-check suite for one tool."""
    if tool == "netdebug":
        found_depth = probe_parse_depth()
        depth_ok = found_depth == SDNET_LIMITS.max_parse_depth
        size = 64
        installed, overflow_rejected = probe_table_capacity(size)
        capacity_ok = installed == size and overflow_rejected
        kinds = probe_match_kinds()
        kinds_ok = (
            kinds["exact"]
            and kinds["lpm"]
            and kinds["ternary"]
            and not kinds["range"]
        )
        challenges = [
            Challenge(
                "parse-depth",
                1.0 if depth_ok else 0.0,
                f"probed limit {found_depth}, published "
                f"{SDNET_LIMITS.max_parse_depth}",
            ),
            Challenge(
                "table-capacity",
                1.0 if capacity_ok else 0.0,
                f"installed {installed}/{size}, overflow "
                f"{'rejected' if overflow_rejected else 'accepted!'}",
            ),
            Challenge(
                "match-kinds",
                1.0 if kinds_ok else 0.0,
                f"supported: {sorted(k for k, v in kinds.items() if v)}",
            ),
        ]
    elif tool == "external":
        challenges = [
            Challenge(
                "parse-depth",
                0.5,
                "can black-box deep header stacks, cannot see the "
                "compile-time limit",
            ),
            Challenge(
                "table-capacity",
                0.5,
                "can infer misses when entries silently vanish, cannot "
                "read occupancy",
            ),
            Challenge(
                "match-kinds", 0.0,
                "match-kind support is a toolchain property",
            ),
        ]
    elif tool == "formal":
        challenges = [
            Challenge("parse-depth", 0.0, "no target model"),
            Challenge("table-capacity", 0.0, "no target model"),
            Challenge("match-kinds", 0.0, "no target model"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("architecture_check", tool, challenges)
