"""Common scaffolding for the paper's seven use cases (§3).

Each use-case module runs a *challenge suite* — concrete tasks with
seeded defects or required measurements — for a given tool and scores the
fraction it handles. Scores map onto Figure 2's grades via
:meth:`repro.netdebug.report.Capability.from_score`:

* ``>= 0.9``  → Full
* ``>= 0.25`` → Partial
* otherwise → None

The three tools are NetDebug (this library's core), the software formal
verifier (:mod:`repro.baselines.formal`) and the external tester
(:mod:`repro.baselines.external_tester`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...exceptions import NetDebugError
from ..report import Capability

__all__ = ["TOOLS", "USECASES", "Challenge", "UseCaseResult", "score_suite"]

TOOLS = ("netdebug", "formal", "external")

USECASES = (
    "functional",
    "performance",
    "compiler_check",
    "architecture_check",
    "resources",
    "status_monitoring",
    "comparison",
)


@dataclass
class Challenge:
    """One scored task inside a use case."""

    name: str
    score: float
    detail: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise NetDebugError(
                f"challenge {self.name!r} score {self.score} out of [0,1]"
            )


@dataclass
class UseCaseResult:
    """Outcome of one (use case, tool) cell of Figure 2."""

    usecase: str
    tool: str
    challenges: list[Challenge] = field(default_factory=list)

    @property
    def score(self) -> float:
        if not self.challenges:
            return 0.0
        return sum(c.score for c in self.challenges) / len(self.challenges)

    @property
    def capability(self) -> Capability:
        return Capability.from_score(self.score)

    def details(self) -> list[str]:
        return [
            f"{c.name}: {c.score:.2f}" + (f" ({c.detail})" if c.detail else "")
            for c in self.challenges
        ]


def score_suite(
    usecase: str, tool: str, challenges: list[Challenge]
) -> UseCaseResult:
    """Bundle challenge outcomes into a use-case result."""
    if tool not in TOOLS:
        raise NetDebugError(f"unknown tool {tool!r}; expected one of {TOOLS}")
    return UseCaseResult(usecase=usecase, tool=tool, challenges=challenges)
