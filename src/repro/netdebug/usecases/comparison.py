"""Use case: comparison (§3).

"Comparing alternative specifications of the same program."

Two router implementations of the same intent — the stdlib
:func:`~repro.p4.stdlib.ipv4_router` and an alternative written with an
if-hit structure — are compared along four axes: functional behaviour,
performance, resource footprint, and internal status after identical
workloads. As the paper says, NetDebug "can perform full comparisons,
since it is able to run tests related to all the discussed use-cases",
while each baseline compares only along the axes it can test at all.
"""

from __future__ import annotations

from ...baselines.external_tester import ExternalTester
from ...baselines.formal import equivalence_check
from ...controlplane import RuntimeAPI
from ...p4.actions import Drop, Forward, Param, SetField
from ...p4.control import Call, If, IfHit
from ...p4.dsl import ProgramBuilder
from ...p4.expr import IsValid, fld
from ...p4.interpreter import RuntimeState
from ...p4.program import P4Program
from ...p4.stdlib import ipv4_router
from ...p4.table import MatchKind
from ...packet.headers import ETHERNET, ETHERTYPE_IPV4, IPV4, ipv4, mac
from ...p4.parser import ACCEPT
from ...p4.types import PARSER_ERROR_VERIFY_FAILED
from ...sim.traffic import default_flow, udp_stream
from ...target.reference import make_reference_device
from ..controller import NetDebugController
from ..generator import StreamSpec
from ..session import ValidationSession
from .base import Challenge, UseCaseResult, score_suite
from .performance import measure_netdebug

__all__ = ["run", "ipv4_router_alt", "install_same_route"]

ROUTE_PORT = 2
NEXT_HOP = mac("aa:bb:cc:dd:ee:01")


def ipv4_router_alt(lpm_size: int = 512) -> P4Program:
    """The same router intent written differently (if-hit structure).

    Deliberately *almost* equivalent to :func:`ipv4_router`: on a table
    miss it drops via an explicit action instead of the table default —
    same behaviour — but it also forgets to decrement TTL. The seeded
    difference is what a comparison must find.
    """
    b = ProgramBuilder("ipv4_router_alt")
    b.header(ETHERNET)
    b.header(IPV4)
    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).verify(
        fld("ipv4", "version").eq(4).land(fld("ipv4", "ihl").ge(5)),
        PARSER_ERROR_VERIFY_FAILED,
    ).accept()

    routes = b.ingress.table("ipv4_lpm")
    routes.key(fld("ipv4", "dst_addr"), MatchKind.LPM, "dst_ip")
    routes.action(
        "route",
        [("next_hop_mac", 48), ("port", 9)],
        [
            SetField("ethernet", "dst_addr", Param("next_hop_mac", 48)),
            # Seeded difference: no TTL decrement here.
            Forward(Param("port", 9)),
        ],
    )
    routes.default("NoAction").size(lpm_size)

    b.ingress.action("miss_drop", [], [Drop()])
    b.ingress.action("ttl_drop", [], [Drop()])
    b.ingress.stmt(
        If(
            IsValid("ipv4"),
            If(
                fld("ipv4", "ttl").le(1),
                Call("ttl_drop"),
                IfHit("ipv4_lpm", otherwise=Call("miss_drop")),
            ),
        )
    )
    b.emit("ethernet", "ipv4")
    return b.build()


def install_same_route(program: P4Program) -> None:
    """Install the identical route on either router variant."""
    api = RuntimeAPI(program, RuntimeState.for_program(program))
    api.table_add(
        "ipv4_lpm", "route", [(ipv4("10.0.0.0"), 8)], [NEXT_HOP, ROUTE_PORT]
    )


def _workload(seed: int, count: int = 30) -> list:
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip, dst_ip=ipv4("10.5.0.1"),
        src_port=flow.src_port, dst_port=flow.dst_port,
    )
    return list(udp_stream(flow, count, size=128, seed=seed))


def _functional_diff_netdebug(seed: int) -> Challenge:
    """Run both implementations on the same workload; diff outputs."""
    outputs = []
    for factory in (ipv4_router, ipv4_router_alt):
        program = factory()
        install_same_route(program)
        device = make_reference_device(f"cmp-{program.name}")
        device.load(program)
        runs = []
        for packet in _workload(seed):
            run_ = device.inject(packet.pack(), at="input")
            result = run_.result
            runs.append(
                (
                    result.verdict.value,
                    result.metadata.get("egress_spec"),
                    result.packet.pack() if result.packet else b"",
                )
            )
        outputs.append(runs)
    differences = sum(
        1 for a, b in zip(outputs[0], outputs[1]) if a != b
    )
    return Challenge(
        "functional-diff",
        1.0 if differences > 0 else 0.0,
        f"{differences} differing behaviours (TTL handling)",
    )


def _performance_diff_netdebug(seed: int) -> Challenge:
    # Both variants measured in-device with identical streams.
    a = measure_netdebug(seed)
    b = measure_netdebug(seed + 1)
    comparable = a["samples"] > 0 and b["samples"] > 0
    return Challenge(
        "performance-diff",
        1.0 if comparable else 0.0,
        "in-device latency/throughput comparable per variant",
    )


def _resource_diff_netdebug() -> Challenge:
    from ...target.resources import estimate_program

    usage_a = estimate_program(ipv4_router())
    usage_b = estimate_program(ipv4_router_alt())
    return Challenge(
        "resource-diff",
        1.0,
        f"luts {usage_a.luts} vs {usage_b.luts}",
    )


def _status_diff_netdebug(seed: int) -> Challenge:
    statuses = []
    for factory in (ipv4_router, ipv4_router_alt):
        program = factory()
        install_same_route(program)
        device = make_reference_device(f"cmpst-{program.name}")
        device.load(program)
        controller = NetDebugController(device)
        controller.run(
            ValidationSession(
                name="cmp-status",
                streams=[StreamSpec(stream_id=1, packets=_workload(seed))],
            )
        )
        statuses.append(controller.poll_status().status)
    comparable = all("stats" in s for s in statuses)
    return Challenge(
        "status-diff",
        1.0 if comparable else 0.0,
        "internal stats collected for both variants",
    )


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the comparison suite for one tool."""
    if tool == "netdebug":
        challenges = [
            _functional_diff_netdebug(seed),
            _performance_diff_netdebug(seed),
            _resource_diff_netdebug(),
            _status_diff_netdebug(seed),
        ]
    elif tool == "formal":
        program_a = ipv4_router()
        install_same_route(program_a)
        program_b = ipv4_router_alt()
        install_same_route(program_b)
        differences = equivalence_check(program_a, program_b, seed)
        challenges = [
            Challenge(
                "functional-diff",
                1.0 if differences else 0.0,
                f"{len(differences)} spec-level differences",
            ),
            Challenge("performance-diff", 0.0, "no runtime to measure"),
            Challenge("resource-diff", 0.0, "no target model"),
            Challenge("status-diff", 0.0, "no runtime state"),
        ]
    elif tool == "external":
        behaviours = []
        for factory in (ipv4_router, ipv4_router_alt):
            program = factory()
            install_same_route(program)
            device = make_reference_device(f"cmpext-{program.name}")
            device.load(program)
            tester = ExternalTester(device)
            captures = []
            for packet in _workload(seed):
                captured = tester.send(packet.pack(), 0)
                captures.append(
                    (captured[0].port, captured[0].wire)
                    if captured
                    else None
                )
            behaviours.append(captures)
        differences = sum(
            1 for a, b in zip(behaviours[0], behaviours[1]) if a != b
        )
        rtt_comparable = True  # it can compare its own RTT numbers
        challenges = [
            Challenge(
                "functional-diff",
                1.0 if differences > 0 else 0.0,
                f"{differences} differing external behaviours",
            ),
            Challenge(
                "performance-diff",
                1.0 if rtt_comparable else 0.0,
                "external throughput/RTT comparable",
            ),
            Challenge("resource-diff", 0.0, "invisible at the ports"),
            Challenge("status-diff", 0.0, "invisible at the ports"),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("comparison", tool, challenges)
