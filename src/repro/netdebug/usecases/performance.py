"""Use case: performance testing (§3).

"Performance metrics, such as throughput, packet rate and latency."

Four measurement tasks: device throughput, packet rate, per-packet
in-device latency, and per-stage latency breakdown. NetDebug measures all
four from inside the device at line rate. An external tester measures
end-to-end throughput/rate but its latency is round-trip including cable,
PHY and capture overhead, and it has no per-stage visibility. A formal
verifier measures nothing.
"""

from __future__ import annotations

from ...baselines.external_tester import EXTERNAL_OVERHEAD_NS, ExternalTester
from ...p4.stdlib import l2_switch
from ...packet.headers import mac
from ...sim.traffic import default_flow, udp_stream
from ...target.reference import make_reference_device
from ..controller import NetDebugController
from ..generator import StreamSpec
from ..session import ValidationSession
from .base import Challenge, UseCaseResult, score_suite

__all__ = ["run", "measure_netdebug", "measure_external"]

STREAM_LEN = 200
FRAME_SIZE = 256


def _loaded_device(name: str):
    device = make_reference_device(name)
    device.load(l2_switch())
    device.control_plane.table_add(
        "dmac", "forward", [mac("02:00:00:00:00:02")], [1]
    )
    return device


def _test_packets(seed: int):
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip,
        dst_ip=flow.dst_ip,
        src_port=flow.src_port,
        dst_port=flow.dst_port,
        eth_dst=mac("02:00:00:00:00:02"),
    )
    return list(udp_stream(flow, STREAM_LEN, size=FRAME_SIZE, seed=seed))


def measure_netdebug(seed: int = 0, frame_size: int = FRAME_SIZE) -> dict:
    """NetDebug's in-device performance measurement.

    Injects a wrapped probe stream at the input tap and reads throughput,
    packet rate and exact in-device latency from the checker's line-rate
    accounting; per-stage latency comes from the pipeline's cycle model
    observed between taps.
    """
    device = _loaded_device(f"perf-nd-{frame_size}")
    controller = NetDebugController(device)
    flow = default_flow()
    packets = list(udp_stream(flow, STREAM_LEN, size=frame_size, seed=seed))
    start_cycles = device.clock_cycles
    session = ValidationSession(
        name="perf",
        streams=[StreamSpec(stream_id=7, packets=packets, wrap=True)],
    )
    report = controller.run(session)
    elapsed = max(1, device.clock_cycles - start_cycles)
    clock_hz = device.limits.clock_mhz * 1e6
    elapsed_s = elapsed / clock_hz
    octets = sum(p.wire_length for p in packets)
    stage_cycles = {
        stage: device.pipeline.stage_cycles(stage, frame_size)
        for stage in device.stage_names()
    }
    return {
        "throughput_gbps": octets * 8 / elapsed_s / 1e9,
        "packet_rate_mpps": len(packets) / elapsed_s / 1e6,
        "latency_cycles_mean": report.latency.mean,
        "latency_cycles_p99": report.latency.p99,
        "latency_us_mean": report.latency.mean / device.limits.clock_mhz,
        "line_rate_gbps": device.limits.line_rate_gbps,
        "stage_cycles": stage_cycles,
        "samples": report.latency.count,
    }


def measure_external(seed: int = 0, frame_size: int = FRAME_SIZE) -> dict:
    """The external tester's port-level measurement of the same device."""
    device = _loaded_device(f"perf-ext-{frame_size}")
    tester = ExternalTester(device)
    flow = default_flow()
    flow = type(flow)(
        src_ip=flow.src_ip,
        dst_ip=flow.dst_ip,
        src_port=flow.src_port,
        dst_port=flow.dst_port,
        eth_dst=mac("02:00:00:00:00:02"),
    )
    packets = list(udp_stream(flow, STREAM_LEN, size=frame_size, seed=seed))
    return tester.measure(packets, port=0)


def run(tool: str, seed: int = 0) -> UseCaseResult:
    """Run the performance suite for one tool."""
    if tool == "netdebug":
        measured = measure_netdebug(seed)
        challenges = [
            Challenge(
                "throughput",
                1.0 if measured["throughput_gbps"] > 0 else 0.0,
                f"{measured['throughput_gbps']:.2f} Gb/s",
            ),
            Challenge(
                "packet-rate",
                1.0 if measured["packet_rate_mpps"] > 0 else 0.0,
                f"{measured['packet_rate_mpps']:.2f} Mpps",
            ),
            Challenge(
                "in-device-latency",
                1.0 if measured["samples"] == STREAM_LEN else 0.0,
                f"mean {measured['latency_cycles_mean']:.1f} cycles "
                f"over {measured['samples']} samples",
            ),
            Challenge(
                "per-stage-latency",
                1.0 if len(measured["stage_cycles"]) >= 4 else 0.0,
                f"{len(measured['stage_cycles'])} stages profiled",
            ),
        ]
    elif tool == "external":
        measured = measure_external(seed)
        # Latency is RTT only: it always embeds the measurement overhead,
        # so it bounds — but cannot equal — the in-device figure.
        rtt_is_inflated = (
            measured["rtt_min_ns"] >= EXTERNAL_OVERHEAD_NS
        )
        challenges = [
            Challenge(
                "throughput",
                1.0 if measured["throughput_gbps"] > 0 else 0.0,
                f"{measured['throughput_gbps']:.2f} Gb/s at the ports",
            ),
            Challenge(
                "packet-rate",
                1.0 if measured["packet_rate_mpps"] > 0 else 0.0,
                f"{measured['packet_rate_mpps']:.2f} Mpps at the ports",
            ),
            Challenge(
                "in-device-latency",
                0.5 if rtt_is_inflated else 0.0,
                "RTT only; includes cable/PHY/capture overhead",
            ),
            Challenge(
                "per-stage-latency",
                0.0,
                "no visibility inside the pipeline",
            ),
        ]
    elif tool == "formal":
        challenges = [
            Challenge("throughput", 0.0, "static analysis measures nothing"),
            Challenge("packet-rate", 0.0, "static analysis measures nothing"),
            Challenge(
                "in-device-latency", 0.0, "static analysis measures nothing"
            ),
            Challenge(
                "per-stage-latency", 0.0, "static analysis measures nothing"
            ),
        ]
    else:
        raise ValueError(f"unknown tool {tool!r}")
    return score_suite("performance", tool, challenges)
