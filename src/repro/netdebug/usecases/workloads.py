"""Seeded-defect workloads shared by the use-case suites.

Four defect classes drive the functional/compiler scoring, one per
visibility regime:

* a **spec bug** (program logic wrong — visible in the specification),
* a **control-plane bug** (wrong table entry — visible given operator
  intent),
* a **target bug** (compiled artifact deviates from the spec — invisible
  at spec level), and
* an **internal accounting task** (requires reading in-device state).
"""

from __future__ import annotations

from ...controlplane import RuntimeAPI
from ...p4.actions import Drop, Forward, Param
from ...p4.dsl import ProgramBuilder
from ...p4.expr import IsValid, fld, meta
from ...p4.interpreter import RuntimeState
from ...p4.parser import ACCEPT
from ...p4.program import P4Program
from ...p4.table import MatchKind
from ...packet.headers import (
    ETHERTYPE_IPV4,
    IPPROTO_UDP,
    IPV4,
    UDP,
    ETHERNET,
    ipv4,
    mac,
)
from ...packet.builder import udp_packet

__all__ = [
    "buggy_acl_program",
    "intact_acl_program",
    "install_acl_intent",
    "INTENT_DENY",
    "INTENT_ALLOW",
    "denied_packet",
    "allowed_packet",
    "router_with_entry",
]

#: The operator's intent for the ACL workload: deny UDP from 10.0.0.0/8
#: to port 53, allow everything else (forward to port 1).
INTENT_DENY = {
    "src_ip": ipv4("10.0.0.1"),
    "dst_ip": ipv4("192.168.0.9"),
    "dst_port": 53,
}
INTENT_ALLOW = {
    "src_ip": ipv4("172.16.0.1"),
    "dst_ip": ipv4("192.168.0.9"),
    "dst_port": 443,
}


def _acl_program(name: str, deny_actually_drops: bool) -> P4Program:
    """A small UDP ACL; the buggy variant's deny action forgets Drop."""
    b = ProgramBuilder(name)
    b.header(ETHERNET)
    b.header(IPV4)
    b.header(UDP)

    b.parser_state("start", extracts=["ethernet"]).select(
        fld("ethernet", "ether_type"),
        [(ETHERTYPE_IPV4, "parse_ipv4")],
        default=ACCEPT,
    )
    b.parser_state("parse_ipv4", extracts=["ipv4"]).select(
        fld("ipv4", "protocol"),
        [(IPPROTO_UDP, "parse_udp")],
        default=ACCEPT,
    )
    b.parser_state("parse_udp", extracts=["udp"]).accept()

    acl = b.ingress.table("acl")
    acl.key(fld("ipv4", "src_addr"), MatchKind.TERNARY, "src_ip")
    acl.key(fld("udp", "dst_port"), MatchKind.TERNARY, "dport")
    # The seeded spec bug: deny's body is empty, so "denied" traffic
    # falls through to the forwarding default.
    acl.action("deny", [], [Drop()] if deny_actually_drops else [])
    acl.action("allow", [], [])
    acl.default("allow").size(64)

    from ...p4.control import ApplyTable, Call, If, Seq

    b.ingress.action(
        "to_uplink", [("nport", 9)], [Forward(Param("nport", 9))]
    )
    b.ingress.stmt(
        If(
            IsValid("udp"),
            Seq.of(ApplyTable("acl")),
        )
    )
    b.ingress.when(meta("drop").eq(0), Call("to_uplink", (1,)))

    b.emit("ethernet", "ipv4", "udp")
    program = b.build()
    return program


def buggy_acl_program() -> P4Program:
    """ACL whose deny action is a no-op — the seeded spec bug."""
    return _acl_program("acl_buggy", deny_actually_drops=False)


def intact_acl_program() -> P4Program:
    """The corrected ACL, for sanity baselines."""
    return _acl_program("acl_ok", deny_actually_drops=True)


def install_acl_intent(program: P4Program) -> None:
    """Install the operator's deny rule (10.0.0.0/8 → port 53)."""
    api = RuntimeAPI(program, RuntimeState.for_program(program))
    api.table_add(
        "acl",
        "deny",
        [(ipv4("10.0.0.0"), 0xFF000000), (53, 0xFFFF)],
        [],
        priority=10,
    )


def denied_packet() -> bytes:
    """A packet the intent says must be dropped."""
    return udp_packet(
        INTENT_DENY["dst_ip"],
        INTENT_DENY["src_ip"],
        INTENT_DENY["dst_port"],
        3333,
        payload=b"denied",
    ).pack()


def allowed_packet() -> bytes:
    """A packet the intent says must be forwarded to port 1."""
    return udp_packet(
        INTENT_ALLOW["dst_ip"],
        INTENT_ALLOW["src_ip"],
        INTENT_ALLOW["dst_port"],
        4444,
        payload=b"allowed",
    ).pack()


def router_with_entry(
    installed_port: int, prefix: str = "10.0.0.0", prefix_len: int = 8
) -> P4Program:
    """An IPv4 router with one route installed at ``installed_port``.

    The control-plane-bug challenge installs the wrong port and checks
    which tools notice the divergence from intent.
    """
    from ...p4.stdlib import ipv4_router

    program = ipv4_router()
    api = RuntimeAPI(program, RuntimeState.for_program(program))
    api.table_add(
        "ipv4_lpm",
        "route",
        [(ipv4(prefix), prefix_len)],
        [mac("aa:bb:cc:dd:ee:01"), installed_port],
    )
    return program
