"""The paper's seven use cases (§3), each as a scored challenge suite."""

from . import (
    architecture_check,
    comparison,
    compiler_check,
    functional,
    performance,
    resources,
    status_monitoring,
)
from .base import TOOLS, USECASES, Challenge, UseCaseResult, score_suite

#: Use-case name -> module with a ``run(tool, seed)`` entry point.
USECASE_MODULES = {
    "functional": functional,
    "performance": performance,
    "compiler_check": compiler_check,
    "architecture_check": architecture_check,
    "resources": resources,
    "status_monitoring": status_monitoring,
    "comparison": comparison,
}

__all__ = [
    "TOOLS",
    "USECASES",
    "Challenge",
    "UseCaseResult",
    "score_suite",
    "USECASE_MODULES",
    "functional",
    "performance",
    "compiler_check",
    "architecture_check",
    "resources",
    "status_monitoring",
    "comparison",
]
