"""Distributed, streaming campaign execution over a worker fleet.

The campaign engine (:mod:`repro.netdebug.campaign`) tops out at one
host's cores; the validation methodology only pays off when the
(program × target × fault × workload) matrix is big enough to surface
rare platform deviations. This module lifts shard dispatch onto a
socket transport (:mod:`repro.netdebug.transport`):

* A **coordinator** owns the expanded job list and serves shards to
  every connected worker, keeping up to ``slots`` shards outstanding
  per worker (credit-based pipelining).
* **Workers** — on this host or any other — connect, execute shards
  with the same per-process artifact cache the pool path uses, and
  stream each :class:`ScenarioResult` back the moment it completes.
* **Streaming ingest**: results arrive out of order and fire the
  ``on_result(scenario_key, report, progress)`` hook immediately, so a
  long campaign renders progressively; the final report is reassembled
  deterministically (:func:`repro.netdebug.campaign.assemble_report`),
  making serial, pooled and distributed runs **byte-identical**.
* **Fault tolerance**: a worker crash or disconnect mid-shard requeues
  its outstanding shards on the surviving workers; each shard has a
  retry budget, and exhausting it (or losing every worker, or a shard
  raising remotely) raises a :class:`ClusterError` naming the shard.

CLI (one coordinator, any number of workers, any hosts)::

    python -m repro.netdebug.cluster coordinator --listen 0.0.0.0:47815 \\
        --programs strict_parser,acl_firewall --targets reference,sdnet \\
        --out campaign.json
    python -m repro.netdebug.cluster worker --connect host:47815 --slots 4

``coordinator --baseline`` runs the committed golden-baseline matrix
(:func:`repro.netdebug.diffing.baseline_matrix`), which is what the
``cluster-smoke`` CI job diffs against ``baselines/campaign.json``.
The ``local`` subcommand (and :func:`run_cluster_campaign`) launches a
localhost coordinator plus N worker processes in one call — the
convenience path tests, benchmarks and CI use.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..exceptions import ClusterError
from .campaign import (
    CampaignProgress,
    CampaignReport,
    ScenarioMatrix,
    ScenarioResult,
    ShardExecutor,
    _pool_context,
    _replay_shard,
    _run_shard,
    run_campaign,
)
from .report import SessionReport
from .transport import (
    Channel,
    decode_job,
    require_cache_version,
    stamp_cache_version,
)

__all__ = [
    "SHARD_FUNCTIONS",
    "DEFAULT_RETRY_BUDGET",
    "Coordinator",
    "worker_main",
    "service_worker_main",
    "normalize_tags",
    "tags_eligible",
    "ClusterExecutor",
    "run_cluster_campaign",
    "ProgressPrinter",
    "main",
]

#: Wire names for the shard functions a coordinator may dispatch. The
#: protocol ships *names*, never code: a worker only ever executes the
#: shard kernels its own build registers here.
SHARD_FUNCTIONS = {
    "run": _run_shard,
    "replay": _replay_shard,
}

#: Re-dispatches allowed per shard after its first loss (so a shard is
#: attempted at most ``1 + budget`` times before ClusterError).
DEFAULT_RETRY_BUDGET = 2

_CRASH_EXIT = 17


def _fn_name_for(shard_fn) -> str:
    for name, fn in SHARD_FUNCTIONS.items():
        if fn is shard_fn:
            return name
    raise ClusterError(
        "cluster executor can only dispatch registered shard functions "
        f"({sorted(SHARD_FUNCTIONS)}), got {shard_fn!r}"
    )


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

@dataclass
class _Worker:
    """Coordinator-side record of one connected worker."""

    name: str
    channel: Channel
    slots: int = 1
    outstanding: set = dc_field(default_factory=set)
    dead: bool = False


class Coordinator:
    """Serves shard jobs to socket-connected workers, streaming results.

    One instance runs one campaign (:meth:`run`). All mutable state is
    guarded by a single condition variable; per-worker sender threads
    pull from the shared pending deque (so a fast worker naturally
    takes more shards) and per-worker receiver threads ingest results
    and detect death. ``port=0`` binds an ephemeral port — read
    :attr:`address` for what to hand the workers.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        timeout: float | None = None,
    ):
        if retry_budget < 0:
            raise ClusterError("retry budget must be >= 0")
        self.retry_budget = retry_budget
        self.timeout = timeout
        self._listener = socket.create_server((host, port))
        self._cond = threading.Condition()
        self._ingest_lock = threading.Lock()
        self._ingest_inflight = 0
        self._jobs: dict[int, tuple] = {}
        self._pending: deque[int] = deque()
        self._attempts: dict[int, int] = {}
        self._results: dict[int, ScenarioResult] = {}
        self._error: ClusterError | None = None
        self._fn_name = ""
        self._ingest = None
        self._closing = False
        self._threads: list[threading.Thread] = []
        self._workers: list[_Worker] = []
        #: Shards re-dispatched after a worker loss (observability+tests).
        self.requeues = 0
        #: Workers that ever completed the hello handshake.
        self.workers_seen = 0
        #: Currently-connected workers; once at least one worker has
        #: joined, this dropping to zero with work pending aborts the
        #: campaign instead of hanging (fleet death is detectable even
        #: for external workers the launcher never spawned).
        self._alive = 0

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return host, port

    # -- lifecycle ------------------------------------------------------

    def run(
        self,
        jobs: list[tuple],
        fn_name: str,
        on_result=None,
        liveness=None,
    ) -> list[ScenarioResult]:
        """Execute ``jobs`` across the fleet; return results by job index.

        ``on_result`` is the executor-level per-result callback (fired
        in arrival order, under the coordinator lock). ``liveness`` is
        polled while waiting; returning False with work remaining
        aborts with a :class:`ClusterError` instead of hanging forever
        (the launcher passes "is any local worker process alive?").
        """
        if fn_name not in SHARD_FUNCTIONS:
            raise ClusterError(f"unknown shard function {fn_name!r}")
        with self._cond:
            self._jobs = dict(enumerate(jobs))
            self._pending = deque(range(len(jobs)))
            self._attempts = {}
            self._results = {}
            self._fn_name = fn_name
            self._ingest = on_result
        accept = threading.Thread(
            target=self._accept_loop, name="cluster-accept", daemon=True
        )
        accept.start()
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )
        with self._cond:
            while not self._done() and self._error is None:
                self._cond.wait(timeout=0.1)
                if self._done() or self._error is not None:
                    break
                fleet_dead = self.workers_seen > 0 and self._alive <= 0
                if fleet_dead or (liveness is not None and not liveness()):
                    self._error = ClusterError(
                        "every worker exited with "
                        f"{len(self._jobs) - len(self._results)} shards "
                        "unfinished; nothing can complete the campaign"
                    )
                elif deadline is not None and time.monotonic() > deadline:
                    self._error = ClusterError(
                        f"campaign timed out after {self.timeout}s with "
                        f"{len(self._results)}/{len(self._jobs)} shards "
                        "complete"
                    )
            error = self._error
            self._closing = True
            self._cond.notify_all()
        # Let sender threads deliver the graceful shutdown (and the
        # receivers drain the resulting worker EOFs) before close()
        # force-closes whatever is still stuck.
        for thread in self._threads:
            thread.join(timeout=2.0)
        self.close()
        if error is not None:
            raise error
        with self._cond:
            return [self._results[index] for index in range(len(jobs))]

    def close(self) -> None:
        with self._cond:
            self._closing = True
            workers = list(self._workers)
            self._cond.notify_all()
        try:
            self._listener.close()
        except OSError:
            pass
        # Force receiver threads out of recv(): a wedged-but-connected
        # worker (suspended host, stalled network) never EOFs on its
        # own, and a blocked daemon thread + socket per timed-out
        # campaign is a leak in long-lived embeddings.
        for worker in workers:
            worker.channel.close()

    # -- shared-state helpers (call with the lock held) -----------------

    def _done(self) -> bool:
        return (
            len(self._results) == len(self._jobs)
            and self._ingest_inflight == 0
        )

    def _worker_died(self, worker: _Worker) -> None:
        """Requeue a dead worker's outstanding shards (budget allowing)."""
        with self._cond:
            if worker.dead:
                return
            worker.dead = True
            self._alive -= 1
            for job_id in sorted(worker.outstanding):
                if job_id in self._results:
                    continue
                attempts = self._attempts.get(job_id, 0)
                if attempts > self.retry_budget:
                    scenario = self._jobs[job_id][1]
                    self._error = ClusterError(
                        f"shard {job_id} ({scenario.key}) was lost to "
                        f"worker failures {attempts} times; retry budget "
                        f"of {self.retry_budget} exhausted"
                    )
                else:
                    # Front of the queue: a lost shard is the oldest
                    # work in flight, so it goes out next.
                    self._pending.appendleft(job_id)
                    self.requeues += 1
            worker.outstanding.clear()
            self._cond.notify_all()

    # -- per-connection threads -----------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn, f"{peer[0]}:{peer[1]}"),
                name=f"cluster-recv-{peer[1]}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, name: str) -> None:
        channel = Channel(conn)
        # Until the hello lands, the peer is untrusted plumbing: accept
        # JSON control frames only (never unpickle pre-handshake bytes)
        # and bound the wait, so a port-scanner or idle health-check
        # connection can neither execute code nor leak this thread.
        conn.settimeout(10.0)
        try:
            hello = channel.recv(json_only=True)
        except (ClusterError, OSError):
            channel.close()
            return
        if not hello or hello.get("type") != "hello":
            channel.close()
            return
        conn.settimeout(None)
        worker = _Worker(
            name=name,
            channel=channel,
            slots=max(1, int(hello.get("slots", 1))),
        )
        with self._cond:
            self.workers_seen += 1
            self._alive += 1
            self._workers.append(worker)
            self._cond.notify_all()
        sender = threading.Thread(
            target=self._send_loop,
            args=(worker,),
            name=f"cluster-send-{name}",
            daemon=True,
        )
        self._threads.append(sender)
        sender.start()
        self._recv_loop(worker)

    def _send_loop(self, worker: _Worker) -> None:
        while True:
            with self._cond:
                while not (
                    self._error is not None
                    or self._closing
                    or worker.dead
                    or self._done()
                    or (
                        self._pending
                        and len(worker.outstanding) < worker.slots
                    )
                ):
                    self._cond.wait(timeout=0.1)
                if (
                    self._error is not None
                    or self._closing
                    or worker.dead
                    or self._done()
                ):
                    break
                job_id = self._pending.popleft()
                self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
                worker.outstanding.add(job_id)
                message = stamp_cache_version(
                    {
                        "type": "job",
                        "id": job_id,
                        "fn": self._fn_name,
                        "job": self._jobs[job_id],
                    }
                )
            try:
                worker.channel.send(message, binary=True)
            except (OSError, ClusterError):
                self._worker_died(worker)
                return
        # Graceful teardown: tell the worker the campaign is over.
        try:
            worker.channel.send({"type": "shutdown"})
        except (OSError, ClusterError):
            pass

    def _recv_loop(self, worker: _Worker) -> None:
        while True:
            try:
                message = worker.channel.recv()
            except (OSError, ClusterError):
                message = None  # died mid-frame
            if message is None:
                break
            kind = message.get("type")
            if kind == "result":
                with self._cond:
                    job_id = message.get("id")
                    if job_id not in self._jobs or "result" not in message:
                        # A foreign/version-skewed worker implementation
                        # must fail the campaign loudly, not strand its
                        # outstanding shards or corrupt the result map.
                        self._error = ClusterError(
                            f"worker {worker.name} sent a malformed "
                            f"result message (id={job_id!r})"
                        )
                        self._cond.notify_all()
                        break
                    worker.outstanding.discard(job_id)
                    fresh = job_id not in self._results
                    # Never fire the user hook for results straggling in
                    # after the campaign already failed or tore down —
                    # run() has raised; mutating user state now would
                    # race their error handling.
                    ingesting = (
                        fresh
                        and self._ingest is not None
                        and self._error is None
                        and not self._closing
                    )
                    if fresh:
                        self._results[job_id] = message["result"]
                    if ingesting:
                        self._ingest_inflight += 1
                    self._cond.notify_all()
                # The user hook runs OFF the dispatch lock (a slow
                # callback must not stall job flow to other workers)
                # but under its own lock, so callbacks stay serialized
                # and the progress counters stay consistent; _done()
                # holds until in-flight callbacks land, so run()
                # cannot return with the last hook still executing.
                if ingesting:
                    try:
                        with self._ingest_lock:
                            self._ingest(message["result"])
                    except Exception as exc:
                        with self._cond:
                            self._error = ClusterError(
                                f"on_result callback raised: {exc!r}"
                            )
                    finally:
                        with self._cond:
                            self._ingest_inflight -= 1
                            self._cond.notify_all()
            elif kind == "error":
                # A shard *raising* is deterministic — it would raise on
                # every worker, so requeueing cannot help. Abort with
                # the remote traceback.
                with self._cond:
                    self._error = ClusterError(
                        f"worker {worker.name} failed shard "
                        f"{message.get('id')}:\n{message.get('error')}"
                    )
                    self._cond.notify_all()
                break
            else:
                with self._cond:
                    self._error = ClusterError(
                        f"worker {worker.name} sent unexpected message "
                        f"type {kind!r}"
                    )
                    self._cond.notify_all()
                break
        self._worker_died(worker)
        worker.channel.close()


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------

def _connect_with_retry(
    address: tuple[str, int], retry_s: float
) -> socket.socket:
    """Workers are routinely started before (or with) the coordinator —
    retry the connect briefly instead of racing the launch order."""
    deadline = time.monotonic() + retry_s
    while True:
        try:
            sock = socket.create_connection(address, timeout=10.0)
            # The connect timeout must not outlive the connect: a worker
            # legitimately blocks in recv() for as long as a shard (or
            # the whole campaign tail) takes.
            sock.settimeout(None)
            return sock
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise ClusterError(
                    f"could not connect to coordinator at "
                    f"{address[0]}:{address[1]} within {retry_s}s: {exc}"
                ) from exc
            time.sleep(0.2)


def _invoke_shard(fn_name: str, job: tuple) -> ScenarioResult:
    return SHARD_FUNCTIONS[fn_name](job)


def _execute_and_reply(channel: Channel, message: dict) -> None:
    job_id = message.get("id")
    try:
        result = _invoke_shard(message["fn"], message["job"])
    except Exception:
        channel.send(
            {
                "type": "error",
                "id": job_id,
                "error": traceback.format_exc(),
            }
        )
    else:
        channel.send(
            {"type": "result", "id": job_id, "result": result}, binary=True
        )


def _serve_inline(
    channel: Channel, crash_after: int | None
) -> None:
    completed = 0
    while True:
        message = channel.recv()
        if message is None or message.get("type") == "shutdown":
            return
        if message.get("type") != "job":
            raise ClusterError(
                f"worker got unexpected message type "
                f"{message.get('type')!r}"
            )
        require_cache_version(message)
        if crash_after is not None and completed >= crash_after:
            os._exit(_CRASH_EXIT)  # simulate dying mid-shard
        _execute_and_reply(channel, message)
        completed += 1


def _serve_pool(
    channel: Channel, slots: int, crash_after: int | None
) -> None:
    pool = _pool_context().Pool(processes=slots)
    # crash_after counts *completed* shards in both serving modes (the
    # CLI promise); completions land on multiprocessing's result-handler
    # thread, hence the lock.
    completed = 0
    completed_lock = threading.Lock()
    try:
        while True:
            message = channel.recv()
            if message is None or message.get("type") == "shutdown":
                return
            if message.get("type") != "job":
                raise ClusterError(
                    f"worker got unexpected message type "
                    f"{message.get('type')!r}"
                )
            require_cache_version(message)
            if crash_after is not None:
                with completed_lock:
                    crash_now = completed >= crash_after
                if crash_now:
                    os._exit(_CRASH_EXIT)
            job_id = message["id"]

            def _reply_ok(result, job_id=job_id):
                nonlocal completed
                try:
                    channel.send(
                        {"type": "result", "id": job_id, "result": result},
                        binary=True,
                    )
                except (OSError, ClusterError):
                    os._exit(3)  # coordinator gone; nothing left to serve
                with completed_lock:
                    completed += 1

            def _reply_err(exc, job_id=job_id):
                nonlocal completed
                try:
                    channel.send(
                        {
                            "type": "error",
                            "id": job_id,
                            "error": "".join(
                                traceback.format_exception(exc)
                            ),
                        }
                    )
                except (OSError, ClusterError):
                    os._exit(3)
                with completed_lock:
                    completed += 1

            pool.apply_async(
                _invoke_shard,
                (message["fn"], message["job"]),
                callback=_reply_ok,
                error_callback=_reply_err,
            )
    finally:
        pool.close()
        pool.join()


def worker_main(
    address: tuple[str, int],
    slots: int = 1,
    crash_after: int | None = None,
    connect_retry_s: float = 20.0,
) -> None:
    """Run one cluster worker until the coordinator shuts it down.

    ``slots`` > 1 backs the worker with a local process pool so one
    worker saturates a many-core host; the coordinator pipelines up to
    ``slots`` shards to it. ``crash_after`` is the chaos hook the
    fault-tolerance tests and CLI expose: the worker process hard-exits
    (``os._exit``) upon *receiving* shard number ``crash_after + 1`` —
    i.e. with that shard dispatched but unfinished — which is exactly
    the mid-shard crash the coordinator must requeue around.
    """
    sock = _connect_with_retry(address, connect_retry_s)
    channel = Channel(sock)
    channel.send(
        {"type": "hello", "slots": max(1, int(slots)), "pid": os.getpid()}
    )
    try:
        if slots <= 1:
            _serve_inline(channel, crash_after)
        else:
            _serve_pool(channel, slots, crash_after)
    finally:
        channel.close()


# ---------------------------------------------------------------------------
# Service worker (persistent fleet protocol)
# ---------------------------------------------------------------------------

def normalize_tags(tags) -> tuple[str, ...]:
    """Validate capability tags into sorted ``dim:value`` form.

    A tag names one value of one placement dimension (``target:tofino``,
    ``engine:batch``). Declaring a dimension *constrains* the worker to
    that value; leaving a dimension undeclared means "anything" — so a
    bare untagged worker accepts every shard.
    """
    normalized = set()
    for tag in tags:
        tag = tag.strip()
        if not tag:
            continue
        dim, sep, value = tag.partition(":")
        if not sep or not dim or not value:
            raise ClusterError(
                f"capability tag {tag!r} must look like dim:value "
                "(e.g. target:tofino, engine:batch)"
            )
        normalized.add(f"{dim}:{value}")
    return tuple(sorted(normalized))


def tags_eligible(worker_tags, required) -> bool:
    """May a worker with ``worker_tags`` run a shard needing ``required``?

    Per placement dimension: the worker is eligible iff it declares no
    tag in that dimension (unconstrained) or declares the exact
    required value. A worker pinned ``target:tofino`` never receives
    reference shards; an untagged worker receives anything.
    """
    declared: dict[str, set[str]] = {}
    for tag in worker_tags:
        dim, _, value = tag.partition(":")
        declared.setdefault(dim, set()).add(value)
    for tag in required:
        dim, _, value = tag.partition(":")
        values = declared.get(dim)
        if values is not None and value not in values:
            return False
    return True


class _ServiceSession:
    """One service worker's cross-connection state.

    ``ledger`` holds every finished assignment's result frame until the
    coordinator acks it — the reconnect currency: after a drop the
    worker re-announces what it finished (``done``) and what it still
    holds unexecuted (``holding``), and the coordinator requeues only
    assignments in neither set.
    """

    def __init__(self, session: str | None = None):
        self.session = session or os.urandom(8).hex()
        self.ledger: dict[int, dict] = {}
        self.queue: deque[dict] = deque()
        self.completed = 0


def _service_execute(message: dict) -> dict:
    """Run one JSON job frame; the reply frame (result or error)."""
    aid = message.get("assignment")
    base = {
        "assignment": aid,
        "campaign": message.get("campaign"),
        "id": message.get("id"),
    }
    try:
        require_cache_version(message)
        if message.get("fn", "run") != "run":
            raise ClusterError(
                f"service workers only run 'run' shards, got "
                f"{message.get('fn')!r}"
            )
        result = _run_shard(decode_job(message["job"]))
    except Exception:
        return {"type": "error", "error": traceback.format_exc(), **base}
    reply = {"type": "result", "result": result.to_dict(), **base}
    # cache_stats is deliberately NOT part of ScenarioResult.to_dict
    # (golden bytes); it rides the frame as a sidecar so the service can
    # still aggregate compile-cache counters into report.meta.
    if result.cache_stats:
        reply["cache_stats"] = dict(result.cache_stats)
    return reply


def service_worker_main(
    address: tuple[str, int],
    slots: int = 1,
    tags=(),
    secret: str | bytes | None = None,
    session: str | None = None,
    crash_after: int | None = None,
    drop_after: int | None = None,
    connect_retry_s: float = 20.0,
    reconnect_budget: int = 8,
) -> None:
    """Run one *service* worker until the coordinator dismisses it.

    Differences from the legacy one-shot :func:`worker_main`:

    * the wire is JSON-only and (with ``secret``) HMAC-authenticated —
      a service worker never unpickles coordinator bytes;
    * the hello declares capability ``tags`` and a persistent
      ``session`` id, and every completed assignment is held in a
      ledger until acked, so a transient drop resumes instead of
      losing work (the coordinator requeues only what the worker
      genuinely no longer holds);
    * shards execute inline, one at a time, with up to ``slots`` jobs
      pipelined into the local queue by the coordinator.

    ``crash_after`` hard-exits on *receiving* shard ``crash_after + 1``
    (legacy chaos semantics); ``drop_after`` instead closes the socket
    after every ``drop_after`` completions and reconnects — the
    reconnect-protocol chaos knob.
    """
    state = _ServiceSession(session)
    tags = normalize_tags(tags)
    slots = max(1, int(slots))
    reconnects = 0
    while True:
        sock = _connect_with_retry(address, connect_retry_s)
        channel = Channel(sock, secret=secret)
        try:
            outcome = _serve_service(
                channel, state, slots, tags, crash_after, drop_after
            )
        except (OSError, ClusterError):
            outcome = "lost"
        finally:
            channel.close()
        if outcome == "shutdown":
            return
        # Anything unfinished survives in ``state``; reconnect and
        # resume. A worker that cannot reach the coordinator at all
        # gives up via _connect_with_retry's deadline.
        reconnects += 1
        if reconnects > reconnect_budget:
            raise ClusterError(
                f"service worker lost its coordinator {reconnects} "
                "times; giving up"
            )


def _serve_service(
    channel: Channel,
    state: _ServiceSession,
    slots: int,
    tags: tuple[str, ...],
    crash_after: int | None,
    drop_after: int | None,
) -> str:
    """One connection's worth of the service worker protocol.

    Returns ``"shutdown"`` (dismissed — exit) or ``"lost"``
    (connection died — caller reconnects with ``state`` intact).
    """
    channel.send(
        {
            "type": "hello",
            "mode": "service",
            "slots": slots,
            "pid": os.getpid(),
            "tags": list(tags),
            "session": state.session,
            "holding": sorted(
                m["assignment"] for m in state.queue
            ),
            "done": sorted(state.ledger),
        }
    )
    welcome = channel.recv(json_only=True)
    if welcome is None or welcome.get("type") == "shutdown":
        return "shutdown"
    if welcome.get("type") != "welcome":
        raise ClusterError(
            f"service coordinator sent {welcome.get('type')!r} "
            "where a welcome was expected"
        )
    for aid in welcome.get("ack", []):
        state.ledger.pop(aid, None)
    for aid in welcome.get("want", []):
        frame = state.ledger.get(aid)
        if frame is not None:
            channel.send(frame)

    cond = threading.Condition()
    status = {"outcome": None}

    def _recv_loop() -> None:
        while True:
            try:
                message = channel.recv(json_only=True)
            except (OSError, ClusterError):
                message = None
            with cond:
                if message is None:
                    status["outcome"] = status["outcome"] or "lost"
                    cond.notify_all()
                    return
                kind = message.get("type")
                if kind == "job":
                    state.queue.append(message)
                elif kind == "ack":
                    for aid in message.get("assignments", []):
                        state.ledger.pop(aid, None)
                elif kind == "shutdown":
                    status["outcome"] = "shutdown"
                    cond.notify_all()
                    return
                cond.notify_all()

    receiver = threading.Thread(
        target=_recv_loop, name="service-worker-recv", daemon=True
    )
    receiver.start()
    dropped_at = state.completed
    while True:
        with cond:
            while status["outcome"] is None and not state.queue:
                cond.wait(timeout=0.1)
            if status["outcome"] == "shutdown":
                return "shutdown"
            if status["outcome"] is not None and not state.queue:
                return status["outcome"]
            if not state.queue:
                continue
            if (
                crash_after is not None
                and state.completed >= crash_after
            ):
                os._exit(_CRASH_EXIT)
            message = state.queue.popleft()
        reply = _service_execute(message)
        with cond:
            aid = message.get("assignment")
            if aid is not None:
                state.ledger[aid] = reply
            state.completed += 1
        try:
            channel.send(reply)
        except (OSError, ClusterError):
            return "lost"  # reply survives in the ledger
        if (
            drop_after is not None
            and state.completed - dropped_at >= drop_after
        ):
            return "lost"  # chaos: simulate a transient drop


# ---------------------------------------------------------------------------
# Executor + localhost launcher
# ---------------------------------------------------------------------------

class ClusterExecutor(ShardExecutor):
    """The :func:`run_campaign` executor seam, cluster flavour.

    With ``local_workers`` > 0 it spawns that many worker processes on
    this host (the convenience/CI path); with 0 it binds ``host:port``
    and waits for external workers started via the CLI on any machine.
    ``crash_after`` applies to the first local worker only — the chaos
    knob the fault-tolerance tests turn.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        local_workers: int = 0,
        slots: int = 1,
        retry_budget: int = DEFAULT_RETRY_BUDGET,
        timeout: float | None = None,
        crash_after: int | None = None,
    ):
        self.host = host
        self.port = port
        self.local_workers = local_workers
        self.slots = slots
        self.retry_budget = retry_budget
        self.timeout = timeout
        self.crash_after = crash_after
        self.requeues = 0
        self.workers_seen = 0

    def execute(self, jobs, shard_fn, on_result=None):
        fn_name = _fn_name_for(shard_fn)
        coordinator = Coordinator(
            host=self.host,
            port=self.port,
            retry_budget=self.retry_budget,
            timeout=self.timeout,
        )
        workers: list = []
        context = _pool_context()
        try:
            for index in range(self.local_workers):
                # Not daemonic: a slots>1 worker backs itself with a
                # process pool, and daemons may not have children. The
                # finally below joins (and as a last resort terminates)
                # them; if this whole process dies, the closed sockets
                # EOF the workers out anyway.
                process = context.Process(
                    target=worker_main,
                    args=(coordinator.address,),
                    kwargs={
                        "slots": self.slots,
                        "crash_after": (
                            self.crash_after if index == 0 else None
                        ),
                    },
                )
                process.start()
                workers.append(process)
            liveness = (
                (lambda: any(p.is_alive() for p in workers))
                if workers
                else None
            )
            return coordinator.run(
                jobs, fn_name, on_result=on_result, liveness=liveness
            )
        finally:
            coordinator.close()
            for process in workers:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
            self.requeues = coordinator.requeues
            self.workers_seen = coordinator.workers_seen


def run_cluster_campaign(
    matrix: ScenarioMatrix,
    workers: int = 2,
    slots: int = 1,
    name: str = "campaign",
    record_dir: str | Path | None = None,
    on_result=None,
    retry_budget: int = DEFAULT_RETRY_BUDGET,
    timeout: float | None = None,
    engine: str = "closure",
    oracle_factory=None,
    compress: bool | object = False,
) -> CampaignReport:
    """Run ``matrix`` on a localhost coordinator + ``workers`` worker
    processes over the real socket transport — the one-call launcher
    tests, CI and benchmarks use. Byte-identical to ``run_campaign``
    on the same matrix (and across engines). ``oracle_factory`` rides
    the pickled job frames to remote workers, so it must resolve by
    reference there — a module-level class or function (the named
    ``ORACLES`` entries qualify). ``compress`` behaves exactly as in
    :func:`run_campaign`: only bucket representatives are fanned out to
    the worker fleet; the report is re-expanded on the coordinator."""
    executor = ClusterExecutor(
        local_workers=workers,
        slots=slots,
        retry_budget=retry_budget,
        timeout=timeout,
    )
    return run_campaign(
        matrix,
        name=name,
        record_dir=record_dir,
        executor=executor,
        on_result=on_result,
        engine=engine,
        oracle_factory=oracle_factory,
        compress=compress,
    )


class ProgressPrinter:
    """A live text renderer for the streaming ``on_result`` hook.

    Prints one line per completed scenario *as it lands* (out of order
    under parallel executors), plus how far the campaign is — the
    paper-workflow view of a long sweep. Records
    :attr:`first_result_s`, which is what the streaming-vs-barrier
    benchmark reports as time-to-first-result.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stdout
        self._start = time.perf_counter()
        self.first_result_s: float | None = None

    def __call__(
        self,
        scenario_key: str,
        report: SessionReport,
        progress: CampaignProgress,
    ) -> None:
        elapsed = time.perf_counter() - self._start
        if self.first_result_s is None:
            self.first_result_s = elapsed
        width = len(str(progress.total))
        verdict = "PASS" if report.passed else "FAIL"
        print(
            f"[{progress.completed:>{width}}/{progress.total}] "
            f"{scenario_key:<55} {verdict} "
            f"findings={len(report.findings):<3} t={elapsed:7.2f}s",
            file=self._stream,
            flush=True,
        )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_address(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ClusterError(
            f"address must look like HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _csv(text: str) -> list[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _matrix_from_args(args) -> tuple[ScenarioMatrix, str]:
    if getattr(args, "baseline", False):
        from .diffing import baseline_matrix

        return baseline_matrix(), "baseline"
    matrix = ScenarioMatrix(
        programs=_csv(args.programs),
        targets=_csv(args.targets),
        workloads=_csv(args.workloads),
        count=args.count,
        seed=args.seed,
        setup=args.setup,
        sla_p99_cycles=args.sla_p99,
        oracle=args.oracle,
    )
    return matrix, args.name


def _add_matrix_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--baseline", action="store_true",
        help="run the committed golden-baseline matrix "
             "(repro.netdebug.diffing.baseline_matrix); overrides the "
             "axis flags below",
    )
    parser.add_argument("--programs", default="strict_parser,acl_firewall")
    parser.add_argument("--targets", default="reference,sdnet,tofino")
    parser.add_argument("--workloads", default="udp,malformed")
    parser.add_argument("--count", type=int, default=16,
                        help="packets per scenario")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--setup", default="acl_gate",
                        help="named provisioner ('' for none)")
    parser.add_argument("--sla-p99", type=float, default=None,
                        help="optional p99 latency SLA in cycles")
    parser.add_argument("--engine", default="closure",
                        choices=("tree", "closure", "batch"),
                        help="execution engine for shard devices")
    parser.add_argument("--oracle", default="stateless",
                        choices=("stateless", "stateful"),
                        help="named expectation oracle: 'stateful' "
                             "threads register state across each "
                             "cell's packet sequence")
    parser.add_argument("--name", default="campaign")
    parser.add_argument(
        "--compress", action="store_true",
        help="bucket the matrix by behaviour signature and execute "
             "only representatives (repro.netdebug.compression); the "
             "report is re-expanded with pruned cells marked "
             "represented_by",
    )
    parser.add_argument("--out", default="",
                        help="write the campaign report JSON here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the live per-scenario stream")


def _finish_campaign(report: CampaignReport, args) -> int:
    print(report.summary())
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        report.save(out)
        print(f"report written to {out}")
    # Exit 0 whenever the campaign *completed*: deviant cells failing is
    # a result (the baseline matrix fails by design), not a crash.
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netdebug.cluster",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    coordinator = commands.add_parser(
        "coordinator",
        help="serve a campaign's shards to connecting workers",
    )
    coordinator.add_argument("--listen", default="127.0.0.1:47815",
                             help="HOST:PORT to bind")
    coordinator.add_argument("--retry-budget", type=int,
                             default=DEFAULT_RETRY_BUDGET)
    coordinator.add_argument("--timeout", type=float, default=600.0,
                             help="abort after this many seconds")
    _add_matrix_args(coordinator)

    worker = commands.add_parser(
        "worker", help="execute shards for a coordinator"
    )
    worker.add_argument("--connect", required=True, help="HOST:PORT")
    worker.add_argument("--slots", type=int, default=1,
                        help="concurrent shards this worker runs")
    worker.add_argument("--crash-after", type=int, default=None,
                        help="chaos testing: hard-exit after completing "
                             "this many shards")

    local = commands.add_parser(
        "local",
        help="one-call localhost cluster: coordinator + N workers",
    )
    local.add_argument("--workers", type=int, default=2)
    local.add_argument("--slots", type=int, default=1)
    local.add_argument("--retry-budget", type=int,
                       default=DEFAULT_RETRY_BUDGET)
    local.add_argument("--timeout", type=float, default=600.0)
    _add_matrix_args(local)

    args = parser.parse_args(argv)
    try:
        if args.command == "worker":
            worker_main(
                _parse_address(args.connect),
                slots=args.slots,
                crash_after=args.crash_after,
            )
            return 0
        if args.command == "coordinator":
            matrix, name = _matrix_from_args(args)
            host, port = _parse_address(args.listen)
            executor = ClusterExecutor(
                host=host,
                port=port,
                retry_budget=args.retry_budget,
                timeout=args.timeout,
            )
            report = run_campaign(
                matrix,
                name=name,
                executor=executor,
                on_result=None if args.quiet else ProgressPrinter(),
                engine=args.engine,
                compress=args.compress,
            )
            return _finish_campaign(report, args)
        # local
        matrix, name = _matrix_from_args(args)
        report = run_cluster_campaign(
            matrix,
            workers=args.workers,
            slots=args.slots,
            name=name,
            retry_budget=args.retry_budget,
            timeout=args.timeout,
            on_result=None if args.quiet else ProgressPrinter(),
            engine=args.engine,
            compress=args.compress,
        )
        return _finish_campaign(report, args)
    except ClusterError as exc:
        print(f"cluster error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke
    sys.exit(main())
