"""The host-side software tool.

Figure 1's third component: a program running on a host computer that
talks to the in-device generator and checker over a *dedicated interface*
(the device's management channel, not its traffic ports). It configures
test packet generation, collects results, reads internal status, and
exposes the higher-level operations the use cases build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import NetDebugError
from ..target.device import NetworkDevice
from .localization import LocalizationResult, localize
from .report import Finding, SessionReport
from .session import ValidationSession, run_session

__all__ = ["StatusSample", "NetDebugController"]


@dataclass
class StatusSample:
    """One status-monitoring poll."""

    clock_cycles: int
    status: dict = field(default_factory=dict)


class NetDebugController:
    """Drives NetDebug on one device.

    The controller holds no traffic-port access at all: everything goes
    through the management interface, which is what lets NetDebug keep
    working when the device has stopped emitting packets entirely.
    """

    def __init__(self, device: NetworkDevice):
        self.device = device
        self.reports: list[SessionReport] = []
        self.status_log: list[StatusSample] = []

    # ------------------------------------------------------------------
    # Validation sessions
    # ------------------------------------------------------------------
    def run(self, session: ValidationSession) -> SessionReport:
        """Execute a validation session and archive its report."""
        report = run_session(self.device, session)
        self.reports.append(report)
        return report

    def archive_campaign(self, campaign_report) -> int:
        """Fold a campaign's per-scenario session reports into this
        controller's archive, so campaign results flow through the same
        :meth:`save_reports` / :meth:`all_findings` regression workflow
        as single sessions. Returns the number of reports archived.
        """
        results = getattr(campaign_report, "results", None)
        if results is None:
            raise NetDebugError(
                "archive_campaign expects a CampaignReport"
            )
        for result in sorted(results, key=lambda r: r.scenario.index):
            self.reports.append(result.report)
        return len(results)

    def stream_archiver(self):
        """An ``on_result`` hook that archives campaign reports live.

        Pass the returned callable to :func:`run_campaign` /
        :func:`repro.netdebug.cluster.run_cluster_campaign` to fold
        session reports into this controller's archive *as shards
        complete* — in arrival order, which under a parallel or
        distributed executor is not scenario order. For a
        deterministically ordered archive, call
        :meth:`archive_campaign` on the final report instead.
        """

        def archive(scenario_key, report, progress):
            self.reports.append(report)

        return archive

    # ------------------------------------------------------------------
    # Status monitoring (periodic internal status information)
    # ------------------------------------------------------------------
    def poll_status(self) -> StatusSample:
        """Take one internal status snapshot over the dedicated interface."""
        sample = StatusSample(
            clock_cycles=self.device.clock_cycles,
            status=self.device.status(),
        )
        self.status_log.append(sample)
        return sample

    def monitor(self, sim, period_ns: float, duration_ns: float) -> int:
        """Schedule periodic status polls on a simulator.

        Returns the number of polls scheduled. Samples accumulate in
        :attr:`status_log` as the simulation runs.
        """
        if period_ns <= 0:
            raise NetDebugError("monitor period must be positive")
        count = int(duration_ns // period_ns)
        for index in range(1, count + 1):
            sim.schedule(index * period_ns, self.poll_status)
        return count

    # ------------------------------------------------------------------
    # Resource quantification
    # ------------------------------------------------------------------
    def read_resources(self) -> dict:
        """Resource usage and utilization of the loaded program."""
        compiled = self.device.compiled
        return {
            "program": compiled.program.name,
            "target": compiled.target_name,
            "luts": compiled.resources.luts,
            "flipflops": compiled.resources.flipflops,
            "bram_blocks": compiled.resources.bram_blocks,
            "dsp_slices": compiled.resources.dsp_slices,
            "utilization": dict(compiled.utilization),
        }

    # ------------------------------------------------------------------
    # Fault localization
    # ------------------------------------------------------------------
    def localize_fault(
        self, wire: bytes, ingress_port: int = 0
    ) -> LocalizationResult:
        """Find the pipeline stage where ``wire`` dies or is corrupted."""
        return localize(self.device, wire, ingress_port)

    # ------------------------------------------------------------------
    # Report archival (regression workflows)
    # ------------------------------------------------------------------
    def save_reports(self, path) -> int:
        """Dump every archived session report to ``path`` as JSON.

        Returns the number of reports written. The file is the unit a
        regression workflow diffs across firmware or program versions.
        """
        import json
        from pathlib import Path

        payload = {
            "device": self.device.name,
            "target": self.device.limits.name,
            "reports": [report.to_dict() for report in self.reports],
        }
        Path(path).write_text(json.dumps(payload, indent=2))
        return len(self.reports)

    @staticmethod
    def load_reports(path) -> list[dict]:
        """Read back reports saved by :meth:`save_reports` (as dicts)."""
        import json
        from pathlib import Path

        return json.loads(Path(path).read_text())["reports"]

    # ------------------------------------------------------------------
    # Convenience findings view
    # ------------------------------------------------------------------
    def all_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        for report in self.reports:
            findings.extend(report.findings)
        return findings
