"""Length-prefixed socket framing for the cluster subsystem.

The coordinator/worker protocol (:mod:`repro.netdebug.cluster`) ships
two kinds of payload over one TCP connection:

* **control messages** — hello, shutdown, remote errors — encoded as
  JSON so they stay inspectable on the wire and a foreign worker
  implementation could speak them;
* **shard payloads** — job tuples carrying :class:`Scenario`/
  :class:`Fault` objects and :class:`ScenarioResult` replies — encoded
  with :mod:`pickle`, the same serialization the multiprocessing pool
  path already relies on.

Every frame is ``>IB`` (4-byte big-endian body length + 1 kind byte)
followed by the body. :func:`recv_message` returns ``None`` on a clean
EOF at a frame boundary and raises :class:`ClusterError` on a truncated
frame, an unknown kind byte, or a body over :data:`MAX_FRAME_BYTES` —
a corrupted length prefix must fail loudly, not allocate 4 GiB.

Pickle frames execute arbitrary code on unpickling: the transport is
for coordinator/worker fleets on hosts you already trust (the threat
model of a lab's validation cluster), never for untrusted peers.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading

from ..exceptions import ClusterError
from ..target.artifact_cache import CACHE_VERSION

__all__ = [
    "MAX_FRAME_BYTES",
    "KIND_JSON",
    "KIND_PICKLE",
    "send_message",
    "recv_message",
    "stamp_cache_version",
    "require_cache_version",
    "Channel",
]

#: Upper bound on one frame body; a campaign result with full latency
#: samples is a few MiB at most, so anything near this is corruption.
MAX_FRAME_BYTES = 1 << 28

_HEADER = struct.Struct(">IB")

KIND_JSON = 0x4A  # "J"
KIND_PICKLE = 0x50  # "P"


def stamp_cache_version(message: dict) -> dict:
    """Stamp a shard job frame with the artifact-cache format version.

    Shard jobs are pickle payloads carrying compiled-artifact-adjacent
    objects; a worker running an older build would deserialize them
    into mismatched shapes and fail obscurely mid-shard. Stamping the
    :data:`~repro.target.artifact_cache.CACHE_VERSION` into the frame
    lets :func:`require_cache_version` reject the skew up front.
    """
    message["cache_version"] = CACHE_VERSION
    return message


def require_cache_version(message: dict) -> None:
    """Reject a job frame whose artifact-cache version does not match.

    Raises :class:`ClusterError` when the stamp is missing (coordinator
    predates the stamp) or differs (stale worker): fail fast with the
    skew named, instead of deserializing mismatched artifacts.
    """
    stamped = message.get("cache_version")
    if stamped != CACHE_VERSION:
        raise ClusterError(
            f"shard job frame carries artifact-cache version {stamped!r} "
            f"but this worker speaks version {CACHE_VERSION}; coordinator "
            "and worker builds are skewed — upgrade the stale side before "
            "dispatching shards"
        )


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; ``None`` on immediate clean EOF.

    EOF *inside* the span is a truncated frame and raises — the peer
    died mid-send and the stream can never resynchronize.
    """
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ClusterError(
                f"connection closed mid-frame ({size - remaining} of "
                f"{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(
    sock: socket.socket, message: dict, binary: bool = False
) -> None:
    """Send one framed message (``binary=True`` selects pickle)."""
    if binary:
        body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        kind = KIND_PICKLE
    else:
        body = json.dumps(message).encode()
        kind = KIND_JSON
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(body), kind) + body)


def recv_message(
    sock: socket.socket, json_only: bool = False
) -> dict | None:
    """Receive one framed message; ``None`` on clean EOF.

    ``json_only`` rejects pickle frames *without unpickling them* —
    the receiver's guard for protocol phases where the peer is not yet
    trusted (a coordinator's pre-hello window on an exposed listener
    must never feed attacker bytes to ``pickle.loads``).
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, kind = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame length {length} exceeds limit {MAX_FRAME_BYTES}; "
            "corrupted length prefix?"
        )
    if json_only and kind != KIND_JSON:
        raise ClusterError(
            "peer sent a non-JSON frame where only JSON control "
            "messages are accepted"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ClusterError("connection closed between header and body")
    if kind == KIND_JSON:
        try:
            message = json.loads(body)
        except ValueError as exc:
            raise ClusterError(f"undecodable JSON frame: {exc}") from exc
    elif kind == KIND_PICKLE:
        try:
            message = pickle.loads(body)
        except Exception as exc:
            raise ClusterError(f"undecodable pickle frame: {exc}") from exc
    else:
        raise ClusterError(f"unknown frame kind byte {kind:#x}")
    if not isinstance(message, dict):
        raise ClusterError(
            f"protocol messages must be dicts, got {type(message).__name__}"
        )
    return message


class Channel:
    """A message channel over one connected socket.

    Sends are serialized by a lock so a worker's pool callbacks (which
    fire on multiprocessing's result-handler thread) can reply
    concurrently with the main receive loop; receives are expected from
    a single thread.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()

    def send(self, message: dict, binary: bool = False) -> None:
        with self._send_lock:
            send_message(self._sock, message, binary=binary)

    def recv(self, json_only: bool = False) -> dict | None:
        return recv_message(self._sock, json_only=json_only)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
