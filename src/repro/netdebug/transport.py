"""Length-prefixed socket framing for the cluster/service subsystems.

The coordinator/worker protocol (:mod:`repro.netdebug.cluster`) ships
two kinds of payload over one TCP connection:

* **control messages** — hello, shutdown, remote errors — encoded as
  JSON so they stay inspectable on the wire and a foreign worker
  implementation could speak them;
* **shard payloads** — job tuples carrying :class:`Scenario`/
  :class:`Fault` objects and :class:`ScenarioResult` replies — encoded
  with :mod:`pickle` on the legacy one-shot cluster path, or (the
  service default) as plain JSON via the :func:`encode_job` /
  :func:`decode_job` codec, which drops the trusted-network constraint
  pickle imposes.

Every frame is ``>IB`` (4-byte big-endian body length + 1 kind byte)
followed by the body. :func:`recv_message` returns ``None`` on a clean
EOF at a frame boundary and raises :class:`ClusterError` on a truncated
frame, an unknown kind byte, or a body over :data:`MAX_FRAME_BYTES` —
a corrupted length prefix must fail loudly, not allocate 4 GiB.

Pickle frames execute arbitrary code on unpickling: the legacy cluster
transport is for coordinator/worker fleets on hosts you already trust
(the threat model of a lab's validation cluster), never for untrusted
peers. The campaign *service* (:mod:`repro.netdebug.service`) instead
speaks JSON-only frames authenticated with :class:`FrameAuth` —
HMAC-SHA256 over a per-direction sequence number, the kind byte and
the body, keyed from ``REPRO_SERVICE_SECRET`` — so a stray or
malicious peer can neither execute code nor replay captured frames.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import json
import os
import pickle
import socket
import struct
import threading

from ..exceptions import ClusterError
from ..target.artifact_cache import CACHE_VERSION

__all__ = [
    "MAX_FRAME_BYTES",
    "KIND_JSON",
    "KIND_PICKLE",
    "SECRET_ENV",
    "TAG_BYTES",
    "FrameAuth",
    "resolve_secret",
    "send_message",
    "recv_message",
    "encode_job",
    "decode_job",
    "stamp_cache_version",
    "require_cache_version",
    "Channel",
]

#: Upper bound on one frame body; a campaign result with full latency
#: samples is a few MiB at most, so anything near this is corruption.
MAX_FRAME_BYTES = 1 << 28

_HEADER = struct.Struct(">IB")

KIND_JSON = 0x4A  # "J"
KIND_PICKLE = 0x50  # "P"

#: Environment variable the service's frame-authentication key comes
#: from. Any non-empty byte string works; both ends must agree.
SECRET_ENV = "REPRO_SERVICE_SECRET"

#: HMAC-SHA256 digest appended to every authenticated frame body.
TAG_BYTES = 32


def resolve_secret(secret: str | bytes | None = None) -> bytes | None:
    """The frame-authentication key: an explicit value, else the
    :data:`SECRET_ENV` environment variable, else ``None`` (no auth)."""
    if secret is None:
        secret = os.environ.get(SECRET_ENV) or None
    if secret is None:
        return None
    if isinstance(secret, str):
        secret = secret.encode()
    if not secret:
        raise ClusterError("frame-authentication secret must be non-empty")
    return secret


class FrameAuth:
    """HMAC-SHA256 frame authentication for one direction of a channel.

    The tag covers the 8-byte big-endian **sequence number**, the kind
    byte and the body. The sequence number is implicit — each side
    counts the frames it has sent/received on the connection — so a
    captured frame re-sent later (a replay) fails verification even
    though its bytes are exactly what the peer once accepted: the
    receiver's counter has moved on.
    """

    def __init__(self, secret: str | bytes):
        secret = resolve_secret(secret)
        if secret is None:
            raise ClusterError("FrameAuth requires a secret")
        self._secret = secret

    def tag(self, seq: int, kind: int, body: bytes) -> bytes:
        message = seq.to_bytes(8, "big") + bytes([kind]) + body
        return hmac_mod.new(
            self._secret, message, hashlib.sha256
        ).digest()

    def verify(
        self, seq: int, kind: int, body: bytes, tag: bytes
    ) -> bool:
        return hmac_mod.compare_digest(self.tag(seq, kind, body), tag)


def stamp_cache_version(message: dict) -> dict:
    """Stamp a shard job frame with the artifact-cache format version.

    Shard jobs are pickle payloads carrying compiled-artifact-adjacent
    objects; a worker running an older build would deserialize them
    into mismatched shapes and fail obscurely mid-shard. Stamping the
    :data:`~repro.target.artifact_cache.CACHE_VERSION` into the frame
    lets :func:`require_cache_version` reject the skew up front.
    """
    message["cache_version"] = CACHE_VERSION
    return message


def require_cache_version(message: dict) -> None:
    """Reject a job frame whose artifact-cache version does not match.

    Raises :class:`ClusterError` when the stamp is missing (coordinator
    predates the stamp) or differs (stale worker): fail fast with the
    skew named, instead of deserializing mismatched artifacts.
    """
    stamped = message.get("cache_version")
    if stamped != CACHE_VERSION:
        raise ClusterError(
            f"shard job frame carries artifact-cache version {stamped!r} "
            f"but this worker speaks version {CACHE_VERSION}; coordinator "
            "and worker builds are skewed — upgrade the stale side before "
            "dispatching shards"
        )


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; ``None`` on immediate clean EOF.

    EOF *inside* the span is a truncated frame and raises — the peer
    died mid-send and the stream can never resynchronize.
    """
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ClusterError(
                f"connection closed mid-frame ({size - remaining} of "
                f"{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(
    sock: socket.socket,
    message: dict,
    binary: bool = False,
    auth: FrameAuth | None = None,
    seq: int = 0,
) -> None:
    """Send one framed message (``binary=True`` selects pickle).

    With ``auth`` set the frame body is followed by the
    :data:`TAG_BYTES`-byte HMAC tag over (``seq``, kind, body); ``seq``
    must be this connection's send counter for the tag to verify.
    """
    if binary:
        body = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        kind = KIND_PICKLE
    else:
        body = json.dumps(message).encode()
        kind = KIND_JSON
    if auth is not None:
        body = body + auth.tag(seq, kind, body)
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"refusing to send a {len(body)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(body), kind) + body)


def recv_message(
    sock: socket.socket,
    json_only: bool = False,
    auth: FrameAuth | None = None,
    seq: int = 0,
) -> dict | None:
    """Receive one framed message; ``None`` on clean EOF.

    ``json_only`` rejects pickle frames *without unpickling them* —
    the receiver's guard for protocol phases where the peer is not yet
    trusted (a coordinator's pre-hello window on an exposed listener
    must never feed attacker bytes to ``pickle.loads``).

    With ``auth`` set the frame must end in a valid HMAC tag for
    ``seq`` (this connection's receive counter); verification happens
    **before** the body is parsed, so unauthenticated bytes never
    reach the JSON decoder, let alone ``pickle.loads``.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, kind = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame length {length} exceeds limit {MAX_FRAME_BYTES}; "
            "corrupted length prefix?"
        )
    if json_only and kind != KIND_JSON:
        raise ClusterError(
            "peer sent a non-JSON frame where only JSON control "
            "messages are accepted"
        )
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ClusterError("connection closed between header and body")
    if auth is not None:
        if len(body) < TAG_BYTES:
            raise ClusterError(
                f"frame too short to carry an authentication tag "
                f"({len(body)} bytes < {TAG_BYTES}); unauthenticated "
                "or truncated peer"
            )
        body, tag = body[:-TAG_BYTES], body[-TAG_BYTES:]
        if not auth.verify(seq, kind, body, tag):
            raise ClusterError(
                f"frame authentication failed at sequence {seq}: bad "
                "key, tampered body, or a replayed frame"
            )
    if kind == KIND_JSON:
        try:
            message = json.loads(body)
        except ValueError as exc:
            raise ClusterError(f"undecodable JSON frame: {exc}") from exc
    elif kind == KIND_PICKLE:
        try:
            message = pickle.loads(body)
        except Exception as exc:
            raise ClusterError(f"undecodable pickle frame: {exc}") from exc
    else:
        raise ClusterError(f"unknown frame kind byte {kind:#x}")
    if not isinstance(message, dict):
        raise ClusterError(
            f"protocol messages must be dicts, got {type(message).__name__}"
        )
    return message


def encode_job(
    epoch: int, scenario, faults, engine: str = "closure"
) -> dict:
    """One ``run`` shard job as a pickle-free JSON payload.

    The inverse of :func:`decode_job`. Scenario and fault objects go
    through the declarative campaign codec
    (:func:`repro.netdebug.campaign.scenario_to_dict` /
    ``fault_to_dict``), which refuses predicate-carrying faults — a
    service job frame must never need code to deserialize. The job
    deliberately cannot carry an ``oracle_factory`` override: the
    scenario's *named* oracle travels as data and resolves through the
    worker's own registry.
    """
    from .campaign import fault_to_dict, scenario_to_dict

    return {
        "epoch": int(epoch),
        "scenario": scenario_to_dict(scenario),
        "faults": [fault_to_dict(fault) for fault in faults],
        "engine": engine,
    }


def decode_job(payload: dict) -> tuple:
    """Rebuild a :func:`repro.netdebug.campaign._run_shard` job tuple
    from its :func:`encode_job` payload."""
    from .campaign import fault_from_dict, scenario_from_dict

    try:
        return (
            int(payload["epoch"]),
            scenario_from_dict(payload["scenario"]),
            tuple(fault_from_dict(f) for f in payload["faults"]),
            False,  # service campaigns never record suites on workers
            payload.get("engine", "closure"),
            None,  # named oracle only; see encode_job
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(
            f"malformed JSON job payload: {exc!r}"
        ) from exc


class Channel:
    """A message channel over one connected socket.

    Sends are serialized by a lock so a worker's pool callbacks (which
    fire on multiprocessing's result-handler thread) can reply
    concurrently with the main receive loop; receives are expected from
    a single thread.

    With ``secret`` set every frame in both directions is HMAC-
    authenticated (:class:`FrameAuth`); the per-direction sequence
    counters live here, one pair per connection, which is what gives
    replayed frames a stale sequence number.
    """

    def __init__(
        self, sock: socket.socket, secret: str | bytes | None = None
    ):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._auth = FrameAuth(secret) if secret is not None else None
        self._send_seq = 0
        self._recv_seq = 0

    @property
    def authenticated(self) -> bool:
        return self._auth is not None

    def send(self, message: dict, binary: bool = False) -> None:
        with self._send_lock:
            send_message(
                self._sock, message, binary=binary,
                auth=self._auth, seq=self._send_seq,
            )
            self._send_seq += 1

    def recv(self, json_only: bool = False) -> dict | None:
        message = recv_message(
            self._sock, json_only=json_only,
            auth=self._auth, seq=self._recv_seq,
        )
        if message is not None:
            self._recv_seq += 1
        return message

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
