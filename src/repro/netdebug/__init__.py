"""NetDebug: the programmable validation framework (the paper's system)."""

from .campaign import (
    CampaignReport,
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    record_campaign,
    replay_campaign,
    run_campaign,
)
from .checker import (
    CheckRule,
    ExpectedOutput,
    ExprCheck,
    LatencyCheck,
    OutputChecker,
    PredicateCheck,
)
from .controller import NetDebugController, StatusSample
from .generator import FieldFuzz, FieldSweep, PacketGenerator, StreamSpec
from .localization import (
    LocalizationResult,
    bisect_fault,
    localize,
    localize_fault,
)
from .report import (
    Capability,
    CheckOutcome,
    Finding,
    LatencyStats,
    SessionReport,
    StreamStats,
)
from .regression import RegressionSuite, record_suite, replay_suite
from .session import ValidationSession, reference_expectation, run_session
from .testpacket import PROBE_MAGIC, ProbeInfo, decode_probe, is_probe, make_probe

__all__ = [
    "PacketGenerator",
    "StreamSpec",
    "FieldSweep",
    "FieldFuzz",
    "OutputChecker",
    "CheckRule",
    "ExprCheck",
    "PredicateCheck",
    "LatencyCheck",
    "ExpectedOutput",
    "NetDebugController",
    "StatusSample",
    "ValidationSession",
    "run_session",
    "reference_expectation",
    "RegressionSuite",
    "record_suite",
    "replay_suite",
    "LocalizationResult",
    "localize",
    "localize_fault",
    "bisect_fault",
    "SessionReport",
    "CheckOutcome",
    "Finding",
    "StreamStats",
    "LatencyStats",
    "Capability",
    "make_probe",
    "decode_probe",
    "is_probe",
    "ProbeInfo",
    "PROBE_MAGIC",
    "ScenarioMatrix",
    "Scenario",
    "ScenarioResult",
    "CampaignReport",
    "run_campaign",
    "record_campaign",
    "replay_campaign",
]
