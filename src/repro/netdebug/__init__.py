"""NetDebug: the programmable validation framework (the paper's system)."""

from .campaign import (
    CampaignProgress,
    CampaignReport,
    PoolExecutor,
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    SerialExecutor,
    ShardExecutor,
    assemble_report,
    record_campaign,
    replay_campaign,
    run_campaign,
)
from .checker import (
    CheckRule,
    ExpectedOutput,
    ExprCheck,
    LatencyCheck,
    OutputChecker,
    PredicateCheck,
)
from .controller import NetDebugController, StatusSample
from .generator import FieldFuzz, FieldSweep, PacketGenerator, StreamSpec
from .localization import (
    LocalizationResult,
    bisect_fault,
    localize,
    localize_fault,
)
from .report import (
    Capability,
    CheckOutcome,
    Finding,
    LatencyStats,
    SessionReport,
    StreamStats,
)
from .oracle import ORACLES, ReferenceOracle, StatelessOracle
from .regression import RegressionSuite, record_suite, replay_suite
from .session import ValidationSession, reference_expectation, run_session
from .testpacket import PROBE_MAGIC, ProbeInfo, decode_probe, is_probe, make_probe

__all__ = [
    "PacketGenerator",
    "StreamSpec",
    "FieldSweep",
    "FieldFuzz",
    "OutputChecker",
    "CheckRule",
    "ExprCheck",
    "PredicateCheck",
    "LatencyCheck",
    "ExpectedOutput",
    "NetDebugController",
    "StatusSample",
    "ValidationSession",
    "run_session",
    "reference_expectation",
    "ReferenceOracle",
    "StatelessOracle",
    "ORACLES",
    "RegressionSuite",
    "record_suite",
    "replay_suite",
    "LocalizationResult",
    "localize",
    "localize_fault",
    "bisect_fault",
    "SessionReport",
    "CheckOutcome",
    "Finding",
    "StreamStats",
    "LatencyStats",
    "Capability",
    "make_probe",
    "decode_probe",
    "is_probe",
    "ProbeInfo",
    "PROBE_MAGIC",
    "ScenarioMatrix",
    "Scenario",
    "ScenarioResult",
    "CampaignProgress",
    "CampaignReport",
    "ShardExecutor",
    "SerialExecutor",
    "PoolExecutor",
    "assemble_report",
    "run_campaign",
    "record_campaign",
    "replay_campaign",
]

#: Lazily re-exported (PEP 562): the differ and the cluster launcher
#: both double as CLIs (``python -m repro.netdebug.diffing`` /
#: ``... .cluster``), and an eager import here would make runpy warn
#: about the module already being loaded. ``__all__`` is extended from
#: these sets so the listings cannot drift.
_DIFFING_EXPORTS = frozenset(
    {
        "CampaignDiff",
        "ScenarioDelta",
        "CellDelta",
        "MatrixDiff",
        "diff_campaigns",
        "diff_differentials",
        "write_baselines",
    }
)
_CLUSTER_EXPORTS = frozenset(
    {
        "ClusterExecutor",
        "Coordinator",
        "ProgressPrinter",
        "run_cluster_campaign",
        "worker_main",
    }
)
__all__ += sorted(_DIFFING_EXPORTS) + sorted(_CLUSTER_EXPORTS)


def __getattr__(name: str):
    if name in _DIFFING_EXPORTS:
        from . import diffing

        return getattr(diffing, name)
    if name in _CLUSTER_EXPORTS:
        from . import cluster

        return getattr(cluster, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
