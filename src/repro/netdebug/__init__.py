"""NetDebug: the programmable validation framework (the paper's system)."""

from .campaign import (
    CampaignReport,
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    record_campaign,
    replay_campaign,
    run_campaign,
)
from .checker import (
    CheckRule,
    ExpectedOutput,
    ExprCheck,
    LatencyCheck,
    OutputChecker,
    PredicateCheck,
)
from .controller import NetDebugController, StatusSample
from .generator import FieldFuzz, FieldSweep, PacketGenerator, StreamSpec
from .localization import (
    LocalizationResult,
    bisect_fault,
    localize,
    localize_fault,
)
from .report import (
    Capability,
    CheckOutcome,
    Finding,
    LatencyStats,
    SessionReport,
    StreamStats,
)
from .regression import RegressionSuite, record_suite, replay_suite
from .session import ValidationSession, reference_expectation, run_session
from .testpacket import PROBE_MAGIC, ProbeInfo, decode_probe, is_probe, make_probe

__all__ = [
    "PacketGenerator",
    "StreamSpec",
    "FieldSweep",
    "FieldFuzz",
    "OutputChecker",
    "CheckRule",
    "ExprCheck",
    "PredicateCheck",
    "LatencyCheck",
    "ExpectedOutput",
    "NetDebugController",
    "StatusSample",
    "ValidationSession",
    "run_session",
    "reference_expectation",
    "RegressionSuite",
    "record_suite",
    "replay_suite",
    "LocalizationResult",
    "localize",
    "localize_fault",
    "bisect_fault",
    "SessionReport",
    "CheckOutcome",
    "Finding",
    "StreamStats",
    "LatencyStats",
    "Capability",
    "make_probe",
    "decode_probe",
    "is_probe",
    "ProbeInfo",
    "PROBE_MAGIC",
    "ScenarioMatrix",
    "Scenario",
    "ScenarioResult",
    "CampaignReport",
    "run_campaign",
    "record_campaign",
    "replay_campaign",
]

#: Lazily re-exported from :mod:`.diffing` (PEP 562): the differ doubles
#: as a CLI (``python -m repro.netdebug.diffing``), and an eager import
#: here would make runpy warn about the module already being loaded.
#: ``__all__`` is extended from this set so the two cannot drift.
_DIFFING_EXPORTS = frozenset(
    {
        "CampaignDiff",
        "ScenarioDelta",
        "CellDelta",
        "MatrixDiff",
        "diff_campaigns",
        "diff_differentials",
        "write_baselines",
    }
)
__all__ += sorted(_DIFFING_EXPORTS)


def __getattr__(name: str):
    if name in _DIFFING_EXPORTS:
        from . import diffing

        return getattr(diffing, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
