"""Validation sessions: the unit of work the software tool executes.

A :class:`ValidationSession` declares *what to test*: the test streams to
inject, the programmable checks to run at a tap, and how expected outputs
are derived — explicitly, or from the **reference oracle**, which executes
the same program (and table state) under spec-faithful semantics and
predicts the exact output bytes and egress port. Divergence between the
oracle and the device under test is precisely how NetDebug catches target
bugs like the missing ``reject`` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable

from ..exceptions import NetDebugError
from ..p4.interpreter import Interpreter, Verdict
from ..p4.program import P4Program
from ..target.device import FLOOD_PORT, NetworkDevice
from ..target.pipeline import PacketSnapshot, TAP_INPUT, TAP_OUTPUT
from .checker import CheckRule, ExpectedOutput, OutputChecker
from .generator import PacketGenerator, StreamSpec
from .report import SessionReport
from .testpacket import make_probe

__all__ = ["reference_expectation", "ValidationSession", "run_session"]


def reference_expectation(
    program: P4Program,
    wire: bytes,
    ingress_port: int = 0,
    label: str = "",
    num_ports: int | None = None,
    timestamp: int = 0,
) -> ExpectedOutput:
    """Predict the spec-correct output for ``wire`` on ``program``.

    Runs the packet through a spec-faithful interpreter sharing the
    program's installed table entries. A drop/reject prediction becomes a
    ``forbid`` expectation; a unicast forward prediction pins the exact
    output bytes and egress port.

    ``timestamp`` is the planned injection time in device-clock cycles;
    programs whose output bytes depend on it (e.g. ``int_telemetry``
    stamping ``ingress_ts``) validate byte-exactly only when the oracle
    sees the same timestamp the device will.

    A *flood* prediction (``egress_spec`` equal to :data:`FLOOD_PORT`)
    is expanded to the per-port expected outputs — every port except the
    ingress when ``num_ports`` is given — rather than pinned to the
    flood sentinel, so port-level captures validate each emitted copy.
    Raises :class:`NetDebugError` when the oracle run produced no
    ``egress_spec`` metadata at all (a broken custom interpreter or
    metadata layout), instead of surfacing a bare ``KeyError``.
    """
    interp = Interpreter(program, honor_reject=True)
    result = interp.process(
        wire, ingress_port=ingress_port, timestamp=timestamp
    )
    if result.verdict is not Verdict.FORWARDED:
        return ExpectedOutput(
            forbid=True, label=label or f"must-drop ({result.verdict.value})"
        )
    egress = result.metadata.get("egress_spec")
    if egress is None:
        raise NetDebugError(
            f"reference oracle forwarded a packet on {program.name!r} "
            "without an egress_spec in its metadata; the oracle cannot "
            "predict an output port"
        )
    if egress == FLOOD_PORT:
        ports = (
            tuple(p for p in range(num_ports) if p != ingress_port)
            if num_ports is not None
            else ()
        )
        return ExpectedOutput(
            wire=result.packet.pack(),
            egress_ports=ports,
            label=label or "reference-flood",
        )
    return ExpectedOutput(
        wire=result.packet.pack(),
        egress_port=egress,
        label=label or "reference-output",
    )


@dataclass
class ValidationSession:
    """A declarative test specification.

    Attributes:
        name: Session name for reports.
        streams: Test streams to inject (in listed order).
        checks: Programmable rules evaluated on every observed packet.
        tap: Where the checker observes (default: the output tap).
        use_reference_oracle: Derive an expectation per injected packet
            from the spec-faithful interpreter.
        expectations: Explicit per-packet expectations (overrides the
            oracle when non-empty; must match the injection count).
    """

    name: str
    streams: list[StreamSpec] = dc_field(default_factory=list)
    checks: list[CheckRule] = dc_field(default_factory=list)
    tap: str = TAP_OUTPUT
    use_reference_oracle: bool = False
    expectations: list[ExpectedOutput] = dc_field(default_factory=list)
    oracle: Callable[[bytes, int], ExpectedOutput] | None = None


def _block_eligible(
    device: NetworkDevice, session: ValidationSession
) -> bool:
    """Whether the session can run through the batch kernel.

    The block path replays the lockstep protocol after the kernel runs,
    which is only equivalent when nothing needs to observe or perturb
    packets mid-flight: no taps, no armed faults, checking at the
    output tap, input-tap injection, and no custom oracle (an arbitrary
    callable may read device state between injections). Wrapped streams
    must be fully timed — an untimed probe's wire bytes embed the
    running clock, which the kernel only knows afterwards.
    """
    if getattr(device, "engine", None) != "batch":
        return False
    if device._batch is None:
        return False
    if session.tap != TAP_OUTPUT or session.oracle is not None:
        return False
    injector = device.injector
    if injector is not None and injector._active:
        return False
    if device.pipeline.has_taps():
        return False
    for stream in session.streams:
        if stream.inject_at != TAP_INPUT:
            return False
        if stream.wrap:
            count = (
                len(stream.packets)
                if stream.packets is not None
                else stream.count
            )
            if (
                stream.timestamps is None
                or len(stream.timestamps) < count
            ):
                return False
    return True


def _run_session_block(
    device: NetworkDevice, session: ValidationSession
) -> SessionReport:
    """Block-wise session execution (batch engine).

    Injects each stream as one block through the batch kernel, then
    replays the arm → observe → disarm protocol per packet against the
    kernel's outcomes — the output tap fires only for forwarded
    packets, so a synthesized output snapshot per forwarded run
    reproduces exactly what the attached checker would have seen.
    """
    generator = PacketGenerator(device)
    for stream in session.streams:
        generator.configure(stream)

    checker = OutputChecker(device, tap=session.tap)
    for rule in session.checks:
        checker.add_check(rule)

    explicit = list(session.expectations)
    explicit_index = 0
    sent_per_stream: dict[int, int] = {}

    for stream in session.streams:
        packets = list(stream.materialize())
        if stream.wrap:
            wires = [
                make_probe(
                    stream.stream_id,
                    seq_no,
                    timestamp=stream.timestamps[seq_no],
                    inner=packet,
                ).pack()
                for seq_no, packet in enumerate(packets)
            ]
        else:
            wires = [packet.pack() for packet in packets]
        timestamps = (
            list(stream.timestamps)
            if stream.timestamps is not None
            else None
        )
        outcomes = device.inject_block(wires, timestamps=timestamps)

        for seq_no, (timestamp, run) in enumerate(outcomes):
            expectation: ExpectedOutput | None = None
            if explicit:
                if explicit_index >= len(explicit):
                    raise NetDebugError(
                        f"session {session.name!r}: fewer expectations "
                        "than injected packets"
                    )
                expectation = explicit[explicit_index]
                explicit_index += 1
            elif session.use_reference_oracle:
                expectation = reference_expectation(
                    device.program, wires[seq_no],
                    label=f"s{stream.stream_id}#{seq_no}",
                    num_ports=len(device.ports),
                    timestamp=timestamp,
                )

            if expectation is not None:
                checker.arm(expectation)
            if run.result.verdict is Verdict.FORWARDED:
                out_packet = run.result.packet
                out_wire = run.output_wire
                if out_wire is None:
                    out_wire = out_packet.pack()
                    run.output_wire = out_wire
                metadata = run.result.metadata
                metadata["_cycles_elapsed"] = run.latency_cycles
                checker._on_snapshot(
                    PacketSnapshot(
                        TAP_OUTPUT, out_wire, out_packet, metadata, True
                    )
                )
            if expectation is not None:
                checker.disarm()
        sent_per_stream[stream.stream_id] = len(wires)
    checker.finalize(
        sent_per_stream if any(s.wrap for s in session.streams) else None
    )

    return SessionReport(
        session=session.name,
        device=device.name,
        program=device.program.name,
        checks=checker.outcomes(),
        findings=list(checker.findings),
        streams=dict(checker.streams),
        latency=checker.latency,
        injected=sum(sent_per_stream.values()),
        observed=checker.observed,
    )


def run_session(
    device: NetworkDevice, session: ValidationSession
) -> SessionReport:
    """Execute a session on a device and collect the report.

    Injection and checking run in lockstep: for each test packet the
    expectation is armed, the packet is injected directly into the data
    plane, the tap observation (synchronous in this simulation) consumes
    the expectation, and the window is closed. The report aggregates
    check outcomes, stream statistics, latency samples and all findings.

    On a ``batch``-engine device, sessions that need no mid-flight
    observation run block-wise through the batch kernel instead (see
    :func:`_run_session_block`); the report is identical byte for byte.
    """
    if not session.streams:
        raise NetDebugError(f"session {session.name!r} has no streams")

    if _block_eligible(device, session):
        return _run_session_block(device, session)

    generator = PacketGenerator(device)
    for stream in session.streams:
        generator.configure(stream)

    checker = OutputChecker(device, tap=session.tap)
    for rule in session.checks:
        checker.add_check(rule)

    explicit = list(session.expectations)
    explicit_index = 0
    sent_per_stream: dict[int, int] = {}

    with checker:
        for stream in session.streams:
            sent = 0
            for seq_no, packet in enumerate(stream.materialize()):
                timestamp = stream.timestamp_at(
                    seq_no, device.clock_cycles
                )
                if stream.wrap:
                    wire = make_probe(
                        stream.stream_id,
                        seq_no,
                        timestamp=timestamp,
                        inner=packet,
                    ).pack()
                else:
                    wire = packet.pack()

                expectation: ExpectedOutput | None = None
                if explicit:
                    if explicit_index >= len(explicit):
                        raise NetDebugError(
                            f"session {session.name!r}: fewer expectations "
                            "than injected packets"
                        )
                    expectation = explicit[explicit_index]
                    explicit_index += 1
                elif session.oracle is not None:
                    expectation = session.oracle(wire, 0)
                elif session.use_reference_oracle:
                    expectation = reference_expectation(
                        device.program, wire,
                        label=f"s{stream.stream_id}#{seq_no}",
                        num_ports=len(device.ports),
                        timestamp=timestamp,
                    )

                if expectation is not None:
                    checker.arm(expectation)
                device.inject(
                    wire, at=stream.inject_at,
                    timestamp=timestamp,
                )
                if expectation is not None:
                    checker.disarm()
                sent += 1
            sent_per_stream[stream.stream_id] = sent
        checker.finalize(
            sent_per_stream if any(s.wrap for s in session.streams) else None
        )

    report = SessionReport(
        session=session.name,
        device=device.name,
        program=device.program.name,
        checks=checker.outcomes(),
        findings=list(checker.findings),
        streams=dict(checker.streams),
        latency=checker.latency,
        injected=sum(sent_per_stream.values()),
        observed=checker.observed,
    )
    return report
