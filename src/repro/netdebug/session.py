"""Validation sessions: the unit of work the software tool executes.

A :class:`ValidationSession` declares *what to test*: the test streams to
inject, the programmable checks to run at a tap, and how expected outputs
are derived — explicitly, or from the **reference oracle**, which executes
the same program (and table state) under spec-faithful semantics and
predicts the exact output bytes and egress port. Divergence between the
oracle and the device under test is precisely how NetDebug catches target
bugs like the missing ``reject`` state.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable

from ..exceptions import NetDebugError
from ..p4.interpreter import Interpreter, Verdict
from ..p4.program import P4Program
from ..target.device import FLOOD_PORT, NetworkDevice
from ..target.pipeline import PacketSnapshot, TAP_INPUT, TAP_OUTPUT
from .checker import CheckRule, ExpectedOutput, OutputChecker
from .generator import PacketGenerator, StreamSpec
from .oracle import (
    ORACLES,
    OracleFactory,
    ReferenceOracle,
    StatelessOracle,
    require_known_oracle,
)
from .report import SessionReport
from .testpacket import make_probe

__all__ = [
    "reference_expectation",
    "ReferenceOracle",
    "StatelessOracle",
    "ORACLES",
    "require_known_oracle",
    "ValidationSession",
    "run_session",
]

# Interpreter and FLOOD_PORT are re-exported for historical importers
# (and the test seam that monkeypatches Interpreter.process); the oracle
# implementation itself lives in repro.netdebug.oracle.
_HISTORICAL_EXPORTS = (Interpreter, FLOOD_PORT)


def reference_expectation(
    program: P4Program,
    wire: bytes,
    ingress_port: int = 0,
    label: str = "",
    num_ports: int | None = None,
    timestamp: int = 0,
) -> ExpectedOutput:
    """Predict the spec-correct output for one packet, statelessly.

    A thin shim over :class:`~repro.netdebug.oracle.StatelessOracle` —
    one fresh-state prediction per call, byte-identical to the
    historical function. Anything predicting a packet *sequence* should
    hold an oracle object instead (see :mod:`repro.netdebug.oracle`);
    sequence consumers in this package all do.
    """
    return StatelessOracle(program, num_ports=num_ports).expect(
        wire, ingress_port=ingress_port, timestamp=timestamp, label=label
    )


@dataclass
class ValidationSession:
    """A declarative test specification.

    Attributes:
        name: Session name for reports.
        streams: Test streams to inject (in listed order).
        checks: Programmable rules evaluated on every observed packet.
        tap: Where the checker observes (default: the output tap).
        use_reference_oracle: Derive an expectation per injected packet
            from the spec-faithful interpreter (fresh state per packet
            unless ``oracle_factory`` overrides the construction).
        expectations: Explicit per-packet expectations (overrides the
            oracle when non-empty; must match the injection count).
        oracle_factory: How to build this session's oracle — called
            once per :func:`run_session` as ``factory(program,
            num_ports=...)`` and fed every packet in injection order.
            Pass :class:`~repro.netdebug.oracle.ReferenceOracle` for
            session-scoped stateful predictions; the default (``None``
            with ``use_reference_oracle``) is
            :class:`~repro.netdebug.oracle.StatelessOracle`, preserving
            the historical per-packet fresh-state semantics.
        oracle: Legacy per-packet callable ``(wire, ingress_port) ->
            ExpectedOutput``; opaque to the engine, so it forces the
            per-packet path (prefer ``oracle_factory``).
    """

    name: str
    streams: list[StreamSpec] = dc_field(default_factory=list)
    checks: list[CheckRule] = dc_field(default_factory=list)
    tap: str = TAP_OUTPUT
    use_reference_oracle: bool = False
    expectations: list[ExpectedOutput] = dc_field(default_factory=list)
    oracle: Callable[[bytes, int], ExpectedOutput] | None = None
    oracle_factory: OracleFactory | None = None


def _block_eligible(
    device: NetworkDevice, session: ValidationSession
) -> bool:
    """Whether the session can run through the batch kernel.

    The block path replays the lockstep protocol after the kernel runs,
    which is only equivalent when nothing needs to observe or perturb
    packets mid-flight: no taps, no armed faults, checking at the
    output tap, input-tap injection, and no custom oracle (an arbitrary
    callable may read device state between injections). Wrapped streams
    must be fully timed — an untimed probe's wire bytes embed the
    running clock, which the kernel only knows afterwards.

    A *stateful* ``oracle_factory`` oracle stays block-compatible: its
    arrival-order contract holds because the kernel preserves arrival
    order for exactly the programs whose predictions depend on it —
    register-bearing programs take the packet-major schedule
    (:attr:`repro.target.batch.BatchProgram.columnar` is False), and
    the post-block replay feeds the oracle in sequence order.
    """
    if getattr(device, "engine", None) != "batch":
        return False
    if device._batch is None:
        return False
    if session.tap != TAP_OUTPUT or session.oracle is not None:
        return False
    injector = device.injector
    if injector is not None and injector._active:
        return False
    if device.pipeline.has_taps():
        return False
    for stream in session.streams:
        if stream.inject_at != TAP_INPUT:
            return False
        if stream.wrap:
            count = (
                len(stream.packets)
                if stream.packets is not None
                else stream.count
            )
            if (
                stream.timestamps is None
                or len(stream.timestamps) < count
            ):
                return False
    return True


def _session_oracle(
    device: NetworkDevice, session: ValidationSession
) -> ReferenceOracle | None:
    """Build the one oracle that serves this session, or ``None``.

    ``oracle_factory`` wins when set (with or without
    ``use_reference_oracle``); ``use_reference_oracle`` alone keeps the
    historical default, a :class:`StatelessOracle`. Both execution
    paths construct the oracle exactly once per run and feed it every
    packet in injection order — the arrival-order contract stateful
    oracles require.
    """
    if session.oracle_factory is not None:
        return session.oracle_factory(
            device.program, num_ports=len(device.ports)
        )
    if session.use_reference_oracle:
        return StatelessOracle(
            device.program, num_ports=len(device.ports)
        )
    return None


def _run_session_block(
    device: NetworkDevice, session: ValidationSession
) -> SessionReport:
    """Block-wise session execution (batch engine).

    Injects each stream as one block through the batch kernel, then
    replays the arm → observe → disarm protocol per packet against the
    kernel's outcomes — the output tap fires only for forwarded
    packets, so a synthesized output snapshot per forwarded run
    reproduces exactly what the attached checker would have seen.
    """
    generator = PacketGenerator(device)
    for stream in session.streams:
        generator.configure(stream)

    checker = OutputChecker(device, tap=session.tap)
    for rule in session.checks:
        checker.add_check(rule)

    oracle = _session_oracle(device, session)
    explicit = list(session.expectations)
    explicit_index = 0
    sent_per_stream: dict[int, int] = {}

    for stream in session.streams:
        packets = list(stream.materialize())
        if stream.wrap:
            wires = [
                make_probe(
                    stream.stream_id,
                    seq_no,
                    timestamp=stream.timestamps[seq_no],
                    inner=packet,
                ).pack()
                for seq_no, packet in enumerate(packets)
            ]
        else:
            wires = [packet.pack() for packet in packets]
        timestamps = (
            list(stream.timestamps)
            if stream.timestamps is not None
            else None
        )
        ports = (
            [stream.port_at(i) for i in range(len(wires))]
            if stream.ingress_ports is not None
            else None
        )
        outcomes = device.inject_block(
            wires, timestamps=timestamps, ports=ports
        )

        for seq_no, (timestamp, run) in enumerate(outcomes):
            expectation: ExpectedOutput | None = None
            if explicit:
                if explicit_index >= len(explicit):
                    raise NetDebugError(
                        f"session {session.name!r}: fewer expectations "
                        "than injected packets"
                    )
                expectation = explicit[explicit_index]
                explicit_index += 1
            elif oracle is not None:
                expectation = oracle.expect(
                    wires[seq_no],
                    ingress_port=stream.port_at(seq_no),
                    timestamp=timestamp,
                    label=f"s{stream.stream_id}#{seq_no}",
                )

            if expectation is not None:
                checker.arm(expectation)
            if run.result.verdict is Verdict.FORWARDED:
                out_packet = run.result.packet
                out_wire = run.output_wire
                if out_wire is None:
                    out_wire = out_packet.pack()
                    run.output_wire = out_wire
                metadata = run.result.metadata
                metadata["_cycles_elapsed"] = run.latency_cycles
                checker._on_snapshot(
                    PacketSnapshot(
                        TAP_OUTPUT, out_wire, out_packet, metadata, True
                    )
                )
            if expectation is not None:
                checker.disarm()
        sent_per_stream[stream.stream_id] = len(wires)
    checker.finalize(
        sent_per_stream if any(s.wrap for s in session.streams) else None
    )

    return SessionReport(
        session=session.name,
        device=device.name,
        program=device.program.name,
        checks=checker.outcomes(),
        findings=list(checker.findings),
        streams=dict(checker.streams),
        latency=checker.latency,
        injected=sum(sent_per_stream.values()),
        observed=checker.observed,
    )


def run_session(
    device: NetworkDevice, session: ValidationSession
) -> SessionReport:
    """Execute a session on a device and collect the report.

    Injection and checking run in lockstep: for each test packet the
    expectation is armed, the packet is injected directly into the data
    plane, the tap observation (synchronous in this simulation) consumes
    the expectation, and the window is closed. The report aggregates
    check outcomes, stream statistics, latency samples and all findings.

    On a ``batch``-engine device, sessions that need no mid-flight
    observation run block-wise through the batch kernel instead (see
    :func:`_run_session_block`); the report is identical byte for byte.
    """
    if not session.streams:
        raise NetDebugError(f"session {session.name!r} has no streams")

    # Directional workloads carry per-packet ingress ports chosen by
    # traffic generators that do not know the device (int_probe spreads
    # over four ports, tcp_bidir assumes ports {0, 1}); a port beyond
    # the compiled device's count must fail HERE, before any packet of
    # any stream is injected, naming the offending index — not mid-run
    # as a target error after earlier packets already mutated state.
    port_count = len(device.ports)
    for stream in session.streams:
        if stream.ingress_ports is None:
            continue
        for index, port in enumerate(stream.ingress_ports):
            if not 0 <= port < port_count:
                raise NetDebugError(
                    f"session {session.name!r}: stream "
                    f"{stream.stream_id} ingress_ports[{index}] is "
                    f"{port}, but device {device.name!r} has only "
                    f"{port_count} ports (valid: 0..{port_count - 1})"
                )

    if _block_eligible(device, session):
        return _run_session_block(device, session)

    generator = PacketGenerator(device)
    for stream in session.streams:
        generator.configure(stream)

    checker = OutputChecker(device, tap=session.tap)
    for rule in session.checks:
        checker.add_check(rule)

    oracle = _session_oracle(device, session)
    explicit = list(session.expectations)
    explicit_index = 0
    sent_per_stream: dict[int, int] = {}

    with checker:
        for stream in session.streams:
            sent = 0
            for seq_no, packet in enumerate(stream.materialize()):
                timestamp = stream.timestamp_at(
                    seq_no, device.clock_cycles
                )
                port = stream.port_at(seq_no)
                if stream.wrap:
                    wire = make_probe(
                        stream.stream_id,
                        seq_no,
                        timestamp=timestamp,
                        inner=packet,
                    ).pack()
                else:
                    wire = packet.pack()

                expectation: ExpectedOutput | None = None
                if explicit:
                    if explicit_index >= len(explicit):
                        raise NetDebugError(
                            f"session {session.name!r}: fewer expectations "
                            "than injected packets"
                        )
                    expectation = explicit[explicit_index]
                    explicit_index += 1
                elif session.oracle is not None:
                    expectation = session.oracle(wire, port)
                elif oracle is not None:
                    expectation = oracle.expect(
                        wire,
                        ingress_port=port,
                        timestamp=timestamp,
                        label=f"s{stream.stream_id}#{seq_no}",
                    )

                if expectation is not None:
                    checker.arm(expectation)
                device.inject(
                    wire, at=stream.inject_at, port=port,
                    timestamp=timestamp,
                )
                if expectation is not None:
                    checker.disarm()
                sent += 1
            sent_per_stream[stream.stream_id] = sent
        checker.finalize(
            sent_per_stream if any(s.wrap for s in session.streams) else None
        )

    report = SessionReport(
        session=session.name,
        device=device.name,
        program=device.program.name,
        checks=checker.outcomes(),
        findings=list(checker.findings),
        streams=dict(checker.streams),
        latency=checker.latency,
        injected=sum(sent_per_stream.values()),
        observed=checker.observed,
    )
    return report
