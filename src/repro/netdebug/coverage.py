"""Coverage-guided packet generation: one witness per feasible path.

Seeded random batches waste most packets re-exercising the same parser
and table paths; this module replaces the statistical coverage claim
with a provable one. The shared symbolic walker
(:class:`repro.baselines.paths.PathEnumerator`) enumerates every
(parser path × table hit/miss per installed entry) behaviour class
under a **target's deviation model** — quantized TCAM masks and
ignored reject states change which paths are feasible — and
:func:`covering_set` materializes one concrete witness packet per
class, replaying each witness on a tracing interpreter so the
:class:`CoverageMap` records the path each packet *actually* covers
and why every pruned combination was infeasible. The idea follows
Control Plane Compression (Beckett et al., SIGCOMM 2018): collapse a
huge behaviour space into a small representative set with a
machine-checkable map of what each representative stands for.

The map is ground truth, not intent: witnesses for over-approximated
symbolic paths may land on another behaviour class, and the replay
dedups them there (the ``merged`` counter), so "all feasible paths
exercised" means every behaviour class reachable by *any* enumerated
candidate has exactly one witness in the set. :func:`verify_coverage`
re-replays an arbitrary wire set against a map and names the classes
left unexercised — the check the differential harness and the CI gate
run.

The ``coverage`` entry registered in
:data:`repro.sim.traffic.WORKLOADS` derives its packets from the cell
under test via :class:`~repro.sim.traffic.WorkloadContext` (campaign
shards pass their provisioned artifact; standalone callers get a
throwaway device built from the scenario axes). Packet sets are
deterministic per program × target × seed: witness field values are
symbolic minima, the seed drives only the payload bytes.

CLI::

    python -m repro.netdebug.coverage [--programs CSV] [--targets CSV]
        [--setup NAME] [--seed N] [--out report.json]

Exit 1 when any feasible path is left unexercised.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..baselines.paths import (
    MAX_CANDIDATES,
    SPEC_MODEL,
    DeviationModel,
    PathEnumerator,
)
from ..baselines.symbolic import Infeasible
from ..bitutils import stable_hash64
from ..exceptions import NetDebugError, P4RuntimeError, SimulationError
from ..p4.interpreter import Interpreter, PipelineResult
from ..p4.program import P4Program
from ..packet.packet import Packet
from ..sim.traffic import (
    WORKLOADS,
    FlowSpec,
    WorkloadBundle,
    WorkloadContext,
)

__all__ = [
    "TracingInterpreter",
    "CoveredPath",
    "PrunedPath",
    "CoverageMap",
    "covering_set",
    "verify_coverage",
    "verify_report_coverage",
    "main",
]

#: Payload bytes per witness packet (seed-randomized, path-neutral for
#: every stdlib parser: none selects on payload bytes).
WITNESS_PAYLOAD_LEN = 16

#: Trace-event kinds that identify a parser path. ``parser_state``
#: contributes the state name; the rest contribute fixed markers at
#: their position in the walk.
_PARSER_MARKERS = {
    "parser_verify_fail": "!verify",
    "parser_reject": "!reject",
    "parser_reject_ignored": "!reject_ignored",
}


class TracingInterpreter(Interpreter):
    """An interpreter that records which table entry won each lookup.

    The base trace says only hit/miss; the coverage signature needs
    *which* installed entry matched, so ``apply_table`` pre-runs the
    (pure) lookup to learn the winning entry's index before delegating
    to the base implementation. ``table_choices`` accumulates
    ``(table_name, entry_index)`` per packet — ``None`` for a miss —
    and resets on every :meth:`process` call.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.table_choices: list[tuple[str, int | None]] = []

    def process(self, wire, ingress_port=0, timestamp=0):
        self.table_choices = []
        return super().process(
            wire, ingress_port=ingress_port, timestamp=timestamp
        )

    def apply_table(self, control, table_name, ctx, trace):
        table = control.table(table_name)
        result = table.lookup(
            ctx, self.program.env, quantize=self.quantize_tcam
        )
        index = None
        if result.entry is not None:
            for position, entry in enumerate(table.entries):
                if entry is result.entry:
                    index = position
                    break
        self.table_choices.append((table_name, index))
        return super().apply_table(control, table_name, ctx, trace)


def _signature(
    result: PipelineResult, choices: list[tuple[str, int | None]]
) -> str:
    """The behaviour-class identity of one replayed packet.

    Parser walk (state names plus verify/reject markers, in trace
    order) | final verdict | per-table winning entry. Two packets with
    the same signature took the same feasible path.
    """
    tokens: list[str] = []
    for event in result.trace.events:
        if event.kind == "parser_state":
            tokens.append(event.detail)
        elif event.kind in _PARSER_MARKERS:
            tokens.append(_PARSER_MARKERS[event.kind])
    branches = ",".join(
        f"{name}={'miss' if index is None else index}"
        for name, index in choices
    )
    return "|".join((">".join(tokens), result.verdict.value, branches))


def _replay(
    program: P4Program, model: DeviationModel, wire: bytes
) -> str:
    """One fresh-state replay of ``wire`` under ``model`` → signature.

    Every replay starts from clean registers/counters: the coverage
    claim is per-packet path identity, not a stateful trajectory.
    Runtime errors get their own signature class so error-raising
    paths are identifiable (and excludable) rather than crashes.
    """
    interp = TracingInterpreter(
        program,
        honor_reject=model.honor_reject,
        quantize_tcam=model.quantize_tcam,
        deparse_field_budget=model.deparse_field_budget,
    )
    try:
        result = interp.process(wire)
    except P4RuntimeError as exc:
        return f"!error|{exc}"
    return _signature(result, interp.table_choices)


@dataclass
class CoveredPath:
    """One exercised behaviour class and its witness packet."""

    signature: str
    packet: str  # wire hex
    #: Additional enumerated candidates whose witnesses collapsed onto
    #: this class (over-approximate symbolic paths landing together).
    merged: int = 0

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "packet": self.packet,
            "merged": self.merged,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoveredPath":
        return cls(
            signature=data["signature"],
            packet=data["packet"],
            merged=data.get("merged", 0),
        )


@dataclass(frozen=True)
class PrunedPath:
    """One infeasible (or unemittable) combination and why."""

    path: str
    reason: str

    def to_dict(self) -> dict:
        return {"path": self.path, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: dict) -> "PrunedPath":
        return cls(path=data["path"], reason=data["reason"])


@dataclass
class CoverageMap:
    """Which path each emitted packet covers, and what was pruned.

    The artifact the ``coverage`` workload attaches to its bundle; it
    rides :class:`~repro.netdebug.campaign.ScenarioResult` into the
    canonical campaign JSON, so the committed ``baselines/coverage.json``
    golden pins witness bytes, signatures and prune reasons together.
    """

    program: str
    target: str
    seed: int
    covered: list[CoveredPath] = dc_field(default_factory=list)
    pruned: list[PrunedPath] = dc_field(default_factory=list)

    @property
    def merged(self) -> int:
        return sum(path.merged for path in self.covered)

    def signatures(self) -> set[str]:
        return {path.signature for path in self.covered}

    def summary(self) -> dict:
        return {
            "feasible": len(self.covered),
            "packets": len(self.covered),
            "pruned": len(self.pruned),
            "merged": self.merged,
        }

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "target": self.target,
            "seed": self.seed,
            "feasible": len(self.covered),
            "merged": self.merged,
            "covered": [path.to_dict() for path in self.covered],
            "pruned": [path.to_dict() for path in self.pruned],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoverageMap":
        return cls(
            program=data["program"],
            target=data["target"],
            seed=data["seed"],
            covered=[
                CoveredPath.from_dict(c) for c in data.get("covered", [])
            ],
            pruned=[
                PrunedPath.from_dict(p) for p in data.get("pruned", [])
            ],
        )


def covering_set(
    program: P4Program,
    model: DeviationModel = SPEC_MODEL,
    seed: int = 0,
    target: str = "",
) -> tuple[tuple[Packet, ...], CoverageMap]:
    """One witness packet per feasible behaviour class of ``program``.

    Deterministic per program × target model × seed: the enumeration
    order is fixed, witness header fields are the symbolic domain's
    minima, and the seed drives only the payload bytes — so two runs
    (or two hosts) always emit byte-identical packet sets. Candidates
    whose witness replay raises a runtime error are recorded as pruned
    (with the error) rather than emitted, keeping the set safe to
    inject through sessions.
    """
    enumerator = PathEnumerator(program, model)
    rng = random.Random(
        stable_hash64(f"coverage:{program.name}:{target}:{seed}")
        % (1 << 53)
    )
    covered: dict[str, CoveredPath] = {}
    packets: list[Packet] = []
    pruned: list[PrunedPath] = []
    examined = 0
    for spec in enumerator.candidate_specs():
        if examined >= MAX_CANDIDATES:
            pruned.append(
                PrunedPath(
                    "<remaining combinations>",
                    f"enumeration capped at {MAX_CANDIDATES} candidates",
                )
            )
            break
        examined += 1
        if not spec.feasible:
            pruned.append(PrunedPath(spec.describe(), spec.reason))
            continue
        payload = bytes(
            rng.randrange(256) for _ in range(WITNESS_PAYLOAD_LEN)
        )
        try:
            packet = enumerator.build_packet_object(
                spec.path, spec.sym, payload
            )
        except Infeasible as exc:
            pruned.append(
                PrunedPath(
                    spec.describe(), f"witness construction: {exc}"
                )
            )
            continue
        wire = packet.pack()
        signature = _replay(program, model, wire)
        if signature.startswith("!error|"):
            pruned.append(
                PrunedPath(
                    spec.describe(),
                    f"witness replay raised: "
                    f"{signature.removeprefix('!error|')}",
                )
            )
            continue
        if signature in covered:
            covered[signature].merged += 1
            continue
        covered[signature] = CoveredPath(signature, wire.hex())
        packets.append(packet)
    cmap = CoverageMap(
        program=program.name,
        target=target,
        seed=seed,
        covered=list(covered.values()),
        pruned=pruned,
    )
    return tuple(packets), cmap


def verify_coverage(
    program: P4Program,
    model: DeviationModel,
    wires,
    cmap: CoverageMap,
) -> list[str]:
    """Signatures the map claims covered but ``wires`` never exercise.

    The machine-checkable half of the all-paths-exercised claim: replay
    every wire under the model and subtract the achieved signatures
    from the map's. An empty list means every recorded behaviour class
    has a live witness in ``wires``.
    """
    achieved = {_replay(program, model, wire) for wire in wires}
    return sorted(cmap.signatures() - achieved)


# ---------------------------------------------------------------------------
# Scenario-axis resolution (shared by the workload and the verifiers)
# ---------------------------------------------------------------------------

def _materialize_context(
    context: WorkloadContext,
) -> tuple[P4Program, DeviationModel]:
    """The provisioned program and deviation model for a cell.

    Campaign shards hand over their already-provisioned compiled
    artifact (``context.compiled``); everyone else gets a throwaway
    device built and provisioned from the scenario axes, so feasibility
    is always judged against the exact table state the cell runs.
    """
    compiled = context.compiled
    if compiled is None:
        # Deferred: sim.traffic must stay importable without netdebug.
        from ..p4.stdlib import PROGRAMS
        from .campaign import (
            PROVISIONERS,
            TARGETS,
            require_known_program,
            require_known_target,
        )

        require_known_program(context.program, "coverage workload")
        require_known_target(context.target, "coverage workload")
        if context.setup and context.setup not in PROVISIONERS:
            raise SimulationError(
                f"coverage workload: unknown setup {context.setup!r}"
            )
        device = TARGETS[context.target](
            f"coverage-{context.target}-{context.program}"
        )
        compiled = device.load(PROGRAMS[context.program]())
        if context.setup:
            PROVISIONERS[context.setup](device)
    return compiled.program, DeviationModel.from_compiled(compiled)


def _coverage_workload(
    flow: FlowSpec,
    count: int,
    seed: int,
    rate_pps: float,
    context: WorkloadContext | None = None,
) -> WorkloadBundle:
    """The ``coverage`` workload: path witnesses, not random packets.

    ``flow`` and ``rate_pps`` are accepted for registry-signature
    compatibility but unused — the packets derive entirely from the
    program × target × seed. ``count`` is a *floor check*, not a size:
    the bundle always carries the full covering set, and a count too
    small to hold it is refused loudly rather than silently weakening
    the all-paths-exercised claim.
    """
    if count == 0:
        # The campaign manifest probe (count=0) must stay cheap and
        # context-free; an empty bundle carries no times/ports anyway.
        return WorkloadBundle("coverage", ())
    if context is None:
        raise SimulationError(
            "workload 'coverage' derives its packets from the program "
            "under test; pass context=WorkloadContext(program, target, "
            "setup) to build_workload"
        )
    program, model = _materialize_context(context)
    packets, cmap = covering_set(
        program, model, seed=seed, target=context.target
    )
    if count < len(packets):
        raise SimulationError(
            f"workload 'coverage': {context.program!r} on "
            f"{context.target!r} needs {len(packets)} witness packets "
            f"to exercise every feasible path; count={count} would "
            "silently weaken the all-paths-exercised claim — raise the "
            "scenario count"
        )
    return WorkloadBundle("coverage", packets, coverage=cmap)


#: Registered at import time so spawn-started pool/cluster workers —
#: which import the campaign module, which imports this one — all see
#: the same registry.
WORKLOADS["coverage"] = _coverage_workload


def verify_report_coverage(report) -> dict[str, list[str]]:
    """Unexercised signatures per scenario key of a campaign report.

    For every scenario result carrying a coverage map, rebuild the
    cell's provisioned program and deviation model from the scenario
    axes and re-replay the map's witness packets. An empty dict is the
    all-paths-exercised verdict the baseline writer and the CI gate
    require.
    """
    unexercised: dict[str, list[str]] = {}
    for result in report.results:
        cmap = getattr(result, "coverage", None)
        if cmap is None:
            continue
        scenario = result.scenario
        program, model = _materialize_context(
            WorkloadContext(
                scenario.program, scenario.target, scenario.setup
            )
        )
        wires = [bytes.fromhex(path.packet) for path in cmap.covered]
        missing = verify_coverage(program, model, wires, cmap)
        if missing:
            unexercised[scenario.key] = missing
    return unexercised


# ---------------------------------------------------------------------------
# CLI: the all-programs × all-targets sweep the CI smoke job runs
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    from ..p4.stdlib import PROGRAMS
    from .campaign import TARGETS

    parser = argparse.ArgumentParser(
        prog="python -m repro.netdebug.coverage",
        description=(
            "Build covering packet sets for program × target cells and "
            "verify every feasible path is exercised."
        ),
    )
    parser.add_argument(
        "--programs", default="",
        help="comma-separated stdlib programs (default: all)",
    )
    parser.add_argument(
        "--targets", default="",
        help="comma-separated targets (default: all registered)",
    )
    parser.add_argument(
        "--setup", default="",
        help="provisioner applied to every cell (default: none)",
    )
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--out", default="",
        help="write the per-cell coverage maps as JSON here",
    )
    args = parser.parse_args(argv)

    programs = (
        [name for name in args.programs.split(",") if name]
        or sorted(PROGRAMS)
    )
    targets = (
        [name for name in args.targets.split(",") if name]
        or list(TARGETS)
    )
    maps: list[dict] = []
    failures = 0
    for program_name in programs:
        for target_name in targets:
            try:
                program, model = _materialize_context(
                    WorkloadContext(program_name, target_name, args.setup)
                )
            except (NetDebugError, SimulationError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            packets, cmap = covering_set(
                program, model, seed=args.seed, target=target_name
            )
            missing = verify_coverage(
                program, model, [p.pack() for p in packets], cmap
            )
            summary = cmap.summary()
            status = (
                "OK" if not missing else f"UNEXERCISED={len(missing)}"
            )
            print(
                f"{program_name:<20} {target_name:<10} "
                f"paths={summary['feasible']:<4} "
                f"pruned={summary['pruned']:<4} "
                f"merged={summary['merged']:<4} {status}"
            )
            for signature in missing:
                print(f"    unexercised: {signature}")
            failures += len(missing)
            maps.append(
                {**cmap.to_dict(), "unexercised": missing}
            )
    if args.out:
        Path(args.out).write_text(
            json.dumps(maps, sort_keys=True, indent=2) + "\n"
        )
    total = sum(len(m["covered"]) for m in maps)
    print(
        f"{len(maps)} cells, {total} witness packets, "
        f"{failures} unexercised paths"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
