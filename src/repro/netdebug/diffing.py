"""Cross-version campaign diffing: the regression workflow at matrix scale.

The paper's single-session workflow catches one build deviating from one
spec; this module lifts it across *versions*. Two canonical
:class:`~repro.netdebug.campaign.CampaignReport` JSONs (and, optionally,
two :class:`~repro.netdebug.differential.DifferentialReport` matrix
JSONs) are compared scenario by scenario into a structured
:class:`CampaignDiff`:

* **verdict flips** — pass→fail and fail→pass per scenario key, each
  annotated with its finding-kind churn (which finding kinds appeared or
  disappeared, and how many);
* **matrix deltas** — per-cell ``diffs_by_tag`` count changes,
  deviation-tag declarations appearing/disappearing, unexplained-diff
  and model-mismatch growth from the differential harness;
* **latency shifts** — campaign-level cycles-per-packet distribution
  movement (mean/p50/p99) plus probe-sample counts;
* **disjoint handling** — scenarios or matrix cells present on only one
  side are *reported* as added/removed, never a crash.

The verdict that matters is :attr:`CampaignDiff.is_regression`: a flip
is **explained** only when the differential matrix shows the same
(program × target) cell *declared* a deviation-tag change between the
two versions — a vendor shipping a documented behavioural change. Any
other flip is unexplained and fatal, as is any growth in unexplained
differential diffs or model mismatches. Latency movement and
added/removed scenarios are informational.

The module is also the keeper of the repo's **golden baselines**: a
fixed seeded campaign matrix and differential case list
(:func:`baseline_matrix` / :func:`baseline_cases`) whose reports are
committed under ``baselines/`` and regenerated with
``python -m repro.netdebug.diffing --write-baseline``. CI re-runs the
same seeded matrices on every PR and diffs them against the committed
baselines; exit status 1 means an unexplained flip slipped in.

CLI::

    python -m repro.netdebug.diffing old.json new.json \
        [--differential OLD_MATRIX NEW_MATRIX] \
        [--format text|json|markdown] [--out report.md]
    python -m repro.netdebug.diffing --write-baseline \
        [--dir baselines] [--only campaign] [--only compression] ...

Exit codes: 0 = no regression, 1 = regression, 2 = usage/load error.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..exceptions import NetDebugError
from .campaign import (
    CampaignReport,
    ScenarioMatrix,
    provision_acl_gate,
    run_campaign,
)
from .differential import (
    DifferentialCase,
    DifferentialReport,
    DifferentialRunner,
)

__all__ = [
    "BASELINE_SEED",
    "BASELINE_CAMPAIGN_COUNT",
    "BASELINE_DIFFERENTIAL_COUNT",
    "BASELINE_COVERAGE_COUNT",
    "baseline_matrix",
    "baseline_stateful_matrix",
    "baseline_coverage_matrix",
    "baseline_cases",
    "run_baseline_campaign",
    "run_baseline_stateful",
    "run_baseline_coverage",
    "run_baseline_differential",
    "run_baseline_compression",
    "BASELINE_KINDS",
    "write_baselines",
    "verify_equivalence",
    "ScenarioDelta",
    "CellDelta",
    "MatrixDiff",
    "CampaignDiff",
    "diff_campaigns",
    "diff_differentials",
    "inject_unexplained_flip",
    "load_report",
    "main",
]

#: The one seed every golden baseline derives from (the paper's year).
BASELINE_SEED = 2018
#: Packets per campaign scenario in the committed baseline.
BASELINE_CAMPAIGN_COUNT = 10
#: Packets per differential cell in the committed baseline.
BASELINE_DIFFERENTIAL_COUNT = 16
#: Upper bound on covering-set size per coverage scenario — an upper
#: bound, not a batch size: the covering set is exactly as large as the
#: program's feasible-path count under each target's deviation model.
BASELINE_COVERAGE_COUNT = 64


# ---------------------------------------------------------------------------
# Golden-baseline definitions (fixed seeded matrices)
# ---------------------------------------------------------------------------

def baseline_matrix(
    count: int = BASELINE_CAMPAIGN_COUNT, seed: int = BASELINE_SEED
) -> ScenarioMatrix:
    """The committed campaign baseline: the full three-way sweep.

    Both deviant backends are exercised on both workload classes, so the
    baseline pins every known verdict split — reference clean, sdnet
    failing the malformed reject-leak cells, tofino failing via deparse
    truncation and quantized-TCAM denial.
    """
    return ScenarioMatrix(
        programs=["strict_parser", "acl_firewall"],
        targets=["reference", "sdnet", "tofino"],
        faults={"baseline": ()},
        workloads=["udp", "malformed"],
        count=count,
        seed=seed,
        setup="acl_gate",
    )


def baseline_stateful_matrix(
    count: int = BASELINE_CAMPAIGN_COUNT, seed: int = BASELINE_SEED
) -> ScenarioMatrix:
    """The committed *stateful* campaign baseline.

    A separate matrix (and a separate golden file,
    ``baselines/stateful.json``) rather than extra axes on
    :func:`baseline_matrix`: the oracle is a matrix-wide knob, and the
    stateless sweep must keep predicting with fresh per-packet state.
    ``stateful_firewall`` under the ``tcp_bidir`` workload is the cell
    where the oracles *disagree* — return-path packets of opened flows
    are forwarded only when register state threads across the sequence
    — so its golden entries pin the session-scoped prediction on every
    target.
    """
    return ScenarioMatrix(
        programs=["stateful_firewall"],
        targets=["reference", "sdnet", "tofino"],
        faults={"baseline": ()},
        workloads=["tcp_bidir"],
        count=count,
        seed=seed,
        oracle="stateful",
    )


def baseline_coverage_matrix(
    count: int = BASELINE_COVERAGE_COUNT, seed: int = BASELINE_SEED
) -> ScenarioMatrix:
    """The committed *coverage* campaign baseline.

    The same program × target sweep as :func:`baseline_matrix`, driven
    by the ``coverage`` workload: one witness packet per feasible path
    under each target's own deviation model, with the per-scenario
    :class:`~repro.netdebug.coverage.CoverageMap` serialized into the
    golden file. Its entries pin three things at once — the enumerated
    path sets (tofino's quantized-TCAM pruning included), the exact
    witness bytes per seed, and the all-paths-exercised claim that
    :func:`run_baseline_coverage` re-verifies before the file is
    written.
    """
    return ScenarioMatrix(
        programs=["strict_parser", "acl_firewall"],
        targets=["reference", "sdnet", "tofino"],
        faults={"baseline": ()},
        workloads=["coverage"],
        count=count,
        seed=seed,
        setup="acl_gate",
    )


def baseline_cases() -> list[DifferentialCase]:
    """The committed differential baseline: one witness per deviation
    mechanism, the all-targets-agree control, and the register-stateful
    control (``stateful_firewall`` driven by bidirectional flow traffic
    through session-scoped deviant oracles)."""
    return [
        DifferentialCase("strict_parser"),
        DifferentialCase("l2_switch"),
        DifferentialCase("acl_firewall", provision=provision_acl_gate),
        DifferentialCase("stateful_firewall", bidirectional=True),
    ]


def run_baseline_campaign(
    workers: int = 1,
    count: int = BASELINE_CAMPAIGN_COUNT,
    seed: int = BASELINE_SEED,
) -> CampaignReport:
    """Execute the baseline campaign matrix (deterministic per seed)."""
    return run_campaign(
        baseline_matrix(count=count, seed=seed),
        workers=workers,
        name="baseline",
    )


def run_baseline_stateful(
    workers: int = 1,
    count: int = BASELINE_CAMPAIGN_COUNT,
    seed: int = BASELINE_SEED,
) -> CampaignReport:
    """Execute the stateful baseline matrix (deterministic per seed)."""
    return run_campaign(
        baseline_stateful_matrix(count=count, seed=seed),
        workers=workers,
        name="baseline-stateful",
    )


def run_baseline_coverage(
    workers: int = 1,
    count: int = BASELINE_COVERAGE_COUNT,
    seed: int = BASELINE_SEED,
) -> CampaignReport:
    """Execute the coverage baseline matrix and verify its claim.

    Every scenario's covering set is re-replayed against the target's
    deviation model before the report is returned
    (:func:`~repro.netdebug.coverage.verify_report_coverage`); an
    unexercised feasible path raises instead of writing a golden file
    that pins a broken guarantee.
    """
    from .coverage import verify_report_coverage

    report = run_campaign(
        baseline_coverage_matrix(count=count, seed=seed),
        workers=workers,
        name="baseline-coverage",
    )
    unexercised = verify_report_coverage(report)
    if unexercised:
        listing = "; ".join(
            f"{key}: {', '.join(signatures)}"
            for key, signatures in sorted(unexercised.items())
        )
        raise NetDebugError(
            "coverage baseline failed its own all-paths-exercised "
            f"claim — unexercised feasible paths: {listing}"
        )
    return report


def run_baseline_differential(
    count: int = BASELINE_DIFFERENTIAL_COUNT, seed: int = BASELINE_SEED
) -> DifferentialReport:
    """Execute the baseline differential matrix (deterministic per seed)."""
    return DifferentialRunner(
        cases=baseline_cases(), count=count, seed=seed
    ).run()


def run_baseline_compression():
    """The seeded compression artifact ``baselines/compression.json`` pins.

    Buckets :func:`repro.netdebug.compression.baseline_compression_matrix`
    (a superset of :func:`baseline_matrix` — same seed/count/setup, plus
    ghost-fault labels and the imix workload) without executing any cell.
    """
    # Deferred: compression imports this module's baseline constants.
    from .compression import baseline_compression_matrix, compress_matrix

    return compress_matrix(baseline_compression_matrix())


#: Golden baselines ``write_baselines`` can (re)generate, in write order.
BASELINE_KINDS = (
    "campaign", "stateful", "coverage", "differential", "compression",
)


def write_baselines(
    directory: str | Path = "baselines",
    workers: int = 1,
    campaign_count: int = BASELINE_CAMPAIGN_COUNT,
    differential_count: int = BASELINE_DIFFERENTIAL_COUNT,
    coverage_count: int = BASELINE_COVERAGE_COUNT,
    seed: int = BASELINE_SEED,
    only: list[str] | None = None,
) -> dict[str, Path]:
    """Run the seeded baselines and write their JSONs into ``directory``.

    Used both to regenerate the committed golden files after an
    *intentional* behaviour change and, pointed at a scratch directory,
    to produce the fresh-build reports the CI gate diffs against them.
    ``only`` restricts generation to a subset of :data:`BASELINE_KINDS`
    so a CI job can rebuild just the baseline it gates on instead of
    paying for all five serially.
    """
    kinds = list(BASELINE_KINDS) if only is None else list(only)
    for kind in kinds:
        if kind not in BASELINE_KINDS:
            raise NetDebugError(
                f"unknown baseline kind {kind!r}; "
                f"choose from {', '.join(BASELINE_KINDS)}"
            )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    if "campaign" in kinds:
        campaign = run_baseline_campaign(
            workers=workers, count=campaign_count, seed=seed
        )
        paths["campaign"] = campaign.save(directory / "campaign.json")
    if "stateful" in kinds:
        stateful = run_baseline_stateful(
            workers=workers, count=campaign_count, seed=seed
        )
        paths["stateful"] = stateful.save(directory / "stateful.json")
    if "coverage" in kinds:
        coverage = run_baseline_coverage(
            workers=workers, count=coverage_count, seed=seed
        )
        paths["coverage"] = coverage.save(directory / "coverage.json")
    if "differential" in kinds:
        differential = run_baseline_differential(
            count=differential_count, seed=seed
        )
        paths["differential"] = differential.save(
            directory / "differential.json"
        )
    if "compression" in kinds:
        compression = run_baseline_compression()
        paths["compression"] = compression.save(
            directory / "compression.json"
        )
    return paths


# ---------------------------------------------------------------------------
# Diff structures
# ---------------------------------------------------------------------------

@dataclass
class ScenarioDelta:
    """One scenario whose outcome changed between the two versions."""

    key: str
    old_verdict: str
    new_verdict: str
    #: Finding-kind count deltas, new minus old; zero deltas omitted.
    kind_churn: dict[str, int] = dc_field(default_factory=dict)
    score_delta: float = 0.0
    #: Deviation tags whose declaration changed on this scenario's
    #: (program × target) cell — the only acceptable excuse for a flip.
    explained_by: tuple[str, ...] = ()
    #: When the *new* report is a re-expanded compressed run and this
    #: scenario was pruned: the representative whose result it carries.
    #: A delta here means the representative's behaviour changed (or
    #: the bucketing is wrong) — the cell to debug is the
    #: representative, so every rendering names it.
    represented_by: str | None = None

    @property
    def flipped(self) -> bool:
        return self.old_verdict != self.new_verdict

    @property
    def direction(self) -> str:
        return f"{self.old_verdict}->{self.new_verdict}"

    @property
    def explained(self) -> bool:
        return bool(self.explained_by)

    def to_dict(self) -> dict:
        payload = {
            "key": self.key,
            "old_verdict": self.old_verdict,
            "new_verdict": self.new_verdict,
            "flipped": self.flipped,
            "direction": self.direction,
            "kind_churn": dict(sorted(self.kind_churn.items())),
            "score_delta": round(self.score_delta, 6),
            "explained_by": list(self.explained_by),
            "explained": self.explained,
        }
        # Conditional: diffs of uncompressed reports keep their
        # pre-compression bytes.
        if self.represented_by is not None:
            payload["represented_by"] = self.represented_by
        return payload


@dataclass
class CellDelta:
    """One differential-matrix cell whose behaviour changed.

    ``program`` is the cell's case name; ``program_name`` (when set)
    is the underlying program identity a labeled case runs — what
    campaign flips are matched against.
    """

    program: str
    target: str
    program_name: str = ""
    old_tags: tuple[str, ...] = ()
    new_tags: tuple[str, ...] = ()
    #: tag -> [old_count, new_count] for tags whose explained-diff
    #: counts differ between the versions.
    tag_churn: dict[str, list[int]] = dc_field(default_factory=dict)
    unexplained_delta: int = 0
    model_mismatch_delta: int = 0
    #: Unexplained diffs present in the NEW cell whose identity
    #: (packet index + diff kinds) does not appear in the old cell —
    #: counts alone would let an equal-count identity swap (one bug
    #: fixed, a different one introduced) slip through the gate.
    new_unexplained: int = 0
    #: Same identity-aware accounting for model mismatches.
    new_model_mismatches: int = 0
    old_compile_rejected: str = ""
    new_compile_rejected: str = ""

    @property
    def key(self) -> str:
        return f"{self.program}/{self.target}"

    @property
    def tags_changed(self) -> bool:
        return set(self.old_tags) != set(self.new_tags)

    @property
    def regressed(self) -> bool:
        """Any NEW unexplained diff or model mismatch (by identity,
        not count), or a program that used to build now rejected —
        never excusable by declared tags."""
        return (
            self.new_unexplained > 0
            or self.new_model_mismatches > 0
            or bool(self.new_compile_rejected
                    and not self.old_compile_rejected)
        )

    @property
    def changed(self) -> bool:
        return (
            self.tags_changed
            or bool(self.tag_churn)
            or self.old_compile_rejected != self.new_compile_rejected
            or self.unexplained_delta != 0
            or self.model_mismatch_delta != 0
            or self.new_unexplained != 0
            or self.new_model_mismatches != 0
        )

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "target": self.target,
            "program_name": self.program_name,
            "old_tags": list(self.old_tags),
            "new_tags": list(self.new_tags),
            "tags_changed": self.tags_changed,
            "tag_churn": {
                tag: list(counts)
                for tag, counts in sorted(self.tag_churn.items())
            },
            "unexplained_delta": self.unexplained_delta,
            "model_mismatch_delta": self.model_mismatch_delta,
            "new_unexplained": self.new_unexplained,
            "new_model_mismatches": self.new_model_mismatches,
            "old_compile_rejected": self.old_compile_rejected,
            "new_compile_rejected": self.new_compile_rejected,
            "regressed": self.regressed,
        }


@dataclass
class MatrixDiff:
    """Cross-version delta of two differential-matrix reports."""

    cells: list[CellDelta] = dc_field(default_factory=list)
    added: list[str] = dc_field(default_factory=list)
    removed: list[str] = dc_field(default_factory=list)

    @property
    def regressed_cells(self) -> list[CellDelta]:
        return [cell for cell in self.cells if cell.regressed]

    @property
    def is_regression(self) -> bool:
        return bool(self.regressed_cells)

    def changed_tags(self) -> dict[tuple[str, str], tuple[str, ...]]:
        """(program, target) -> the deviation tags whose declaration
        changed — the lookup table campaign flips are excused against.
        Keyed on the cell's underlying *program name* (labeled cases
        carry it separately), since that is what campaign scenarios
        match on."""
        changed: dict[tuple[str, str], tuple[str, ...]] = {}
        for cell in self.cells:
            if not cell.tags_changed:
                continue
            key = (cell.program_name or cell.program, cell.target)
            changed[key] = tuple(
                sorted(
                    set(changed.get(key, ()))
                    | (set(cell.old_tags) ^ set(cell.new_tags))
                )
            )
        return changed

    def to_dict(self) -> dict:
        return {
            "cells": [cell.to_dict() for cell in self.cells],
            "added": list(self.added),
            "removed": list(self.removed),
            "regressed": len(self.regressed_cells),
            "is_regression": self.is_regression,
        }


def _md_cell(text: str) -> str:
    """Escape free-form text (e.g. compiler error lines) for embedding
    in a markdown table cell."""
    return text.replace("|", "\\|").replace("\n", " ")


def _scenario_churn_bits(delta: "ScenarioDelta") -> list[str]:
    """Why a scenario delta is listed — shared by text and markdown
    rendering so a cause can never be visible in one and not the other."""
    bits = [
        f"{kind}{count:+d}"
        for kind, count in sorted(delta.kind_churn.items())
    ]
    if abs(delta.score_delta) >= 1e-9:
        # A score-only delta must still show WHY it is listed.
        bits.append(f"score {delta.score_delta:+.3f}")
    return bits


def _scenario_provenance(delta: "ScenarioDelta") -> str:
    """Where to debug a delta on a synthesized cell — shared by text
    and markdown rendering: a flip in a pruned cell is really a flip
    in (or a bad bucketing with) its representative."""
    if delta.represented_by is None:
        return ""
    return f"pruned cell represented by {delta.represented_by}"


def _cell_change_bits(cell: "CellDelta") -> list[str]:
    """Every per-cell change cause except the tag declarations and the
    unexplained delta (rendered separately per format) — shared by text
    and markdown rendering."""
    bits = [
        f"{tag}: {before} -> {after}"
        for tag, (before, after) in sorted(cell.tag_churn.items())
    ]
    if cell.model_mismatch_delta:
        bits.append(f"model-mismatch {cell.model_mismatch_delta:+d}")
    if cell.new_unexplained:
        bits.append(f"new-unexplained {cell.new_unexplained}")
    if cell.new_model_mismatches:
        bits.append(f"new-model-mismatch {cell.new_model_mismatches}")
    if cell.old_compile_rejected != cell.new_compile_rejected:
        bits.append(
            f"compile: {cell.old_compile_rejected or 'ok'} -> "
            f"{cell.new_compile_rejected or 'ok'}"
        )
    return bits


@dataclass
class CampaignDiff:
    """Structured cross-version comparison of two campaign reports."""

    old_name: str
    new_name: str
    old_scenarios: int = 0
    new_scenarios: int = 0
    #: Scenario keys present on only one side (reported, never fatal).
    added: list[str] = dc_field(default_factory=list)
    removed: list[str] = dc_field(default_factory=list)
    #: Every shared scenario whose outcome changed (flips and churn).
    deltas: list[ScenarioDelta] = dc_field(default_factory=list)
    #: Campaign-level finding-kind count deltas (new minus old).
    kind_churn: dict[str, int] = dc_field(default_factory=dict)
    #: ``{"old": .., "new": .., "delta": ..}`` latency summaries.
    latency: dict[str, dict[str, float]] = dc_field(default_factory=dict)
    #: Present when two differential-matrix reports were supplied too.
    matrix: MatrixDiff | None = None

    @property
    def flips(self) -> list[ScenarioDelta]:
        return [delta for delta in self.deltas if delta.flipped]

    @property
    def unexplained_flips(self) -> list[ScenarioDelta]:
        return [flip for flip in self.flips if not flip.explained]

    @property
    def is_regression(self) -> bool:
        """Any unexplained verdict flip, or any differential-matrix
        regression (unexplained growth / model mismatch / lost build)."""
        if self.unexplained_flips:
            return True
        return self.matrix.is_regression if self.matrix else False

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "old_name": self.old_name,
            "new_name": self.new_name,
            "scenarios": {
                "old": self.old_scenarios, "new": self.new_scenarios
            },
            "added": list(self.added),
            "removed": list(self.removed),
            "deltas": [delta.to_dict() for delta in self.deltas],
            "flips": len(self.flips),
            "unexplained_flips": len(self.unexplained_flips),
            "kind_churn": dict(sorted(self.kind_churn.items())),
            "latency": {
                side: {k: round(v, 6) for k, v in summary.items()}
                for side, summary in self.latency.items()
            },
            "matrix": self.matrix.to_dict() if self.matrix else None,
            "is_regression": self.is_regression,
        }

    def to_json(self) -> str:
        """Canonical byte-stable rendering: the same two inputs always
        produce the identical diff bytes (the CI gate's contract)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    # -- rendering --------------------------------------------------------

    def _any_change(self) -> bool:
        """Anything at all to report — scenario deltas, set changes,
        matrix-cell deltas/additions/removals, or a latency shift."""
        return bool(
            self.deltas
            or self.added
            or self.removed
            or (
                self.matrix
                and (self.matrix.cells or self.matrix.added
                     or self.matrix.removed)
            )
            or self._latency_shifted()
        )

    def _latency_shifted(self) -> bool:
        return any(
            abs(value) >= 1e-9
            for value in self.latency.get("delta", {}).values()
        )

    def summary(self) -> str:
        """Human-readable diff, one section per changed dimension."""
        verdict = "REGRESSION" if self.is_regression else "no regression"
        lines = [
            f"Campaign diff: {self.old_name!r} "
            f"({self.old_scenarios} scenarios) -> {self.new_name!r} "
            f"({self.new_scenarios} scenarios)",
            f"  verdict: {verdict}",
        ]
        for label, keys in (("added", self.added),
                            ("removed", self.removed)):
            if keys:
                lines.append(f"  {label} scenarios: {', '.join(keys)}")
        for delta in self.deltas:
            churn = ", ".join(_scenario_churn_bits(delta))
            provenance = _scenario_provenance(delta)
            suffix = f"  [{provenance}]" if provenance else ""
            if delta.flipped:
                excuse = (
                    f"explained by declared tag change: "
                    f"{', '.join(delta.explained_by)}"
                    if delta.explained else "UNEXPLAINED"
                )
                lines.append(
                    f"  flip [{delta.direction}] {delta.key}"
                    f"{'  churn: ' + churn if churn else ''}  {excuse}"
                    f"{suffix}"
                )
            else:
                lines.append(
                    f"  churn [{delta.old_verdict}] {delta.key}  {churn}"
                    f"{suffix}"
                )
        if self.kind_churn:
            listing = ", ".join(
                f"{kind}{count:+d}"
                for kind, count in sorted(self.kind_churn.items())
            )
            lines.append(f"  finding-kind churn: {listing}")
        if self._latency_shifted():
            old, new = self.latency["old"], self.latency["new"]
            lines.append(
                "  latency cycles/pkt: "
                f"mean {old['cycles_per_packet_mean']:.1f} -> "
                f"{new['cycles_per_packet_mean']:.1f}, "
                f"p99 {old['cycles_per_packet_p99']:.1f} -> "
                f"{new['cycles_per_packet_p99']:.1f}"
            )
        if self.matrix:
            lines.append(
                f"  differential matrix: {len(self.matrix.cells)} changed "
                f"cells, {len(self.matrix.regressed_cells)} regressed"
                + (
                    f", added: {', '.join(self.matrix.added)}"
                    if self.matrix.added else ""
                )
                + (
                    f", removed: {', '.join(self.matrix.removed)}"
                    if self.matrix.removed else ""
                )
            )
            for cell in self.matrix.cells:
                bits = []
                if cell.tags_changed:
                    bits.append(
                        f"tags {sorted(cell.old_tags)} -> "
                        f"{sorted(cell.new_tags)}"
                    )
                bits.extend(_cell_change_bits(cell))
                if cell.unexplained_delta:
                    bits.append(
                        f"unexplained {cell.unexplained_delta:+d}"
                    )
                status = "REGRESSED" if cell.regressed else "explained"
                lines.append(
                    f"    {cell.key}: {'; '.join(bits)} [{status}]"
                )
        if not self._any_change():
            lines.append("  no behavioural changes")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured report (CI job summaries and artifacts)."""
        ok = not self.is_regression
        lines = [
            f"# Campaign diff — `{self.old_name}` → `{self.new_name}`",
            "",
            f"**Verdict:** {'✅ no regression' if ok else '❌ REGRESSION'}"
            f" · {self.old_scenarios} → {self.new_scenarios} scenarios"
            f" · {len(self.flips)} flips"
            f" ({len(self.unexplained_flips)} unexplained)",
            "",
        ]
        if self.deltas:
            lines += [
                "## Scenario changes",
                "",
                "| scenario | old | new | finding churn | explanation |",
                "|---|---|---|---|---|",
            ]
            for delta in self.deltas:
                churn = ", ".join(_scenario_churn_bits(delta)) or "—"
                if not delta.flipped:
                    excuse = "no flip"
                elif delta.explained:
                    excuse = "tag change: " + ", ".join(delta.explained_by)
                else:
                    excuse = "**UNEXPLAINED**"
                if delta.represented_by is not None:
                    excuse += (
                        " · pruned cell represented by "
                        f"`{delta.represented_by}`"
                    )
                lines.append(
                    f"| `{delta.key}` | {delta.old_verdict} | "
                    f"{delta.new_verdict} | {churn} | {excuse} |"
                )
            lines.append("")
        if self.added or self.removed:
            lines += ["## Scenario-set changes", ""]
            for label, keys in (("Added", self.added),
                                ("Removed", self.removed)):
                if keys:
                    lines.append(
                        f"- {label}: "
                        + ", ".join(f"`{key}`" for key in keys)
                    )
            lines.append("")
        if self.kind_churn:
            lines += [
                "## Finding-kind churn",
                "",
                "| kind | Δ |",
                "|---|---|",
            ]
            for kind, count in sorted(self.kind_churn.items()):
                lines.append(f"| `{kind}` | {count:+d} |")
            lines.append("")
        if self._latency_shifted():
            old, new = self.latency["old"], self.latency["new"]
            lines += [
                "## Latency (cycles/packet)",
                "",
                "| metric | old | new | Δ |",
                "|---|---|---|---|",
            ]
            for metric in sorted(old):
                # probe_samples is a COUNT, not a cycles metric; it
                # gets its own line below instead of a table row.
                if not metric.startswith("cycles_per_packet_"):
                    continue
                delta = new.get(metric, 0.0) - old[metric]
                lines.append(
                    f"| {metric} | {old[metric]:.2f} | "
                    f"{new.get(metric, 0.0):.2f} | {delta:+.2f} |"
                )
            if old.get("probe_samples") != new.get("probe_samples"):
                lines.append(
                    f"\n- probe samples: "
                    f"{old.get('probe_samples', 0.0):.0f} → "
                    f"{new.get('probe_samples', 0.0):.0f}"
                )
            lines.append("")
        if self.matrix and (self.matrix.cells or self.matrix.added
                            or self.matrix.removed):
            lines += [
                "## Differential matrix",
                "",
                "| cell | tags | changes | unexplained Δ | status |",
                "|---|---|---|---|---|",
            ]
            for cell in self.matrix.cells:
                tags = (
                    f"{sorted(cell.old_tags)} → {sorted(cell.new_tags)}"
                    if cell.tags_changed
                    else ", ".join(sorted(cell.new_tags)) or "—"
                )
                # Every regression cause must be visible in this row —
                # the job summary is the primary CI surface.
                churn = _md_cell(
                    "; ".join(_cell_change_bits(cell)) or "—"
                )
                status = "**REGRESSED**" if cell.regressed else "explained"
                lines.append(
                    f"| `{cell.key}` | {tags} | {churn} | "
                    f"{cell.unexplained_delta:+d} | {status} |"
                )
            for label, keys in (("Added", self.matrix.added),
                                ("Removed", self.matrix.removed)):
                if keys:
                    lines.append(
                        f"- {label} cells: "
                        + ", ".join(f"`{key}`" for key in keys)
                    )
            lines.append("")
        if not self._any_change():
            lines.append("No behavioural changes.")
        return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# The differs
# ---------------------------------------------------------------------------

def _finding_kinds(result) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in result.report.findings:
        counts[finding.kind] = counts.get(finding.kind, 0) + 1
    return counts


def diff_differentials(
    old: DifferentialReport, new: DifferentialReport
) -> MatrixDiff:
    """Compare two differential-matrix reports cell by cell.

    Disjoint cell sets are reported as added/removed; shared cells
    contribute a :class:`CellDelta` only when something changed.
    """
    if old.count != new.count or old.seed != new.seed:
        raise NetDebugError(
            "differential reports are not comparable: "
            f"old ran seed={old.seed} count={old.count}, "
            f"new ran seed={new.seed} count={new.count}; "
            "re-run both sides with the same seeded configuration"
        )
    old_cells = {(c.program, c.target): c for c in old.cells}
    new_cells = {(c.program, c.target): c for c in new.cells}
    if len(old_cells) != len(old.cells) \
            or len(new_cells) != len(new.cells):
        # Mirrors the campaign-side duplicate-key rejection: a shadowed
        # duplicate cell could hide a regression behind its twin.
        raise NetDebugError(
            "differential report carries duplicate (program, target) "
            "cells; give duplicate cases distinct labels before diffing"
        )
    diff = MatrixDiff(
        added=sorted(
            f"{p}/{t}" for p, t in set(new_cells) - set(old_cells)
        ),
        removed=sorted(
            f"{p}/{t}" for p, t in set(old_cells) - set(new_cells)
        ),
    )
    for key in sorted(set(old_cells) & set(new_cells)):
        before, after = old_cells[key], new_cells[key]
        old_by_tag = before.diffs_by_tag()
        new_by_tag = after.diffs_by_tag()
        # Identity = the full observable fact (packet, diff kinds, what
        # the spec said, what the datapath did): an unexplained diff
        # whose *content* changes at the same index is a new bug too.
        old_unexplained = {
            (d.index, d.kinds, d.spec, d.observed)
            for d in before.unexplained
        }
        new_unexplained = {
            (d.index, d.kinds, d.spec, d.observed)
            for d in after.unexplained
        }
        delta = CellDelta(
            program=key[0],
            target=key[1],
            program_name=after.program_name or before.program_name,
            old_tags=tuple(before.deviation_tags),
            new_tags=tuple(after.deviation_tags),
            tag_churn={
                tag: [old_by_tag.get(tag, 0), new_by_tag.get(tag, 0)]
                for tag in sorted(set(old_by_tag) | set(new_by_tag))
                if old_by_tag.get(tag, 0) != new_by_tag.get(tag, 0)
            },
            unexplained_delta=(
                len(after.unexplained) - len(before.unexplained)
            ),
            model_mismatch_delta=(
                len(after.model_mismatches) - len(before.model_mismatches)
            ),
            new_unexplained=len(new_unexplained - old_unexplained),
            new_model_mismatches=len(
                set(after.model_mismatches)
                - set(before.model_mismatches)
            ),
            old_compile_rejected=before.compile_rejected,
            new_compile_rejected=after.compile_rejected,
        )
        if delta.changed:
            diff.cells.append(delta)
    return diff


def diff_campaigns(
    old: CampaignReport,
    new: CampaignReport,
    old_matrix: DifferentialReport | None = None,
    new_matrix: DifferentialReport | None = None,
) -> CampaignDiff:
    """Compare two campaign reports (plus optional differential matrices).

    Scenarios are matched on their stable key
    (``program/target/fault/workload``); a verdict flip on a shared key
    is excused only when the supplied differential matrices show a
    declared deviation-tag change on the same (program × target) cell.
    Without matrices, every flip is unexplained — the conservative
    default the CI gate wants.
    """
    matrix = (
        diff_differentials(old_matrix, new_matrix)
        if old_matrix is not None and new_matrix is not None
        else None
    )
    changed_tags = matrix.changed_tags() if matrix else {}

    old_by_key = {r.scenario.key: r for r in old.results}
    new_by_key = {r.scenario.key: r for r in new.results}
    if len(old_by_key) != len(old.results) \
            or len(new_by_key) != len(new.results):
        raise NetDebugError(
            "campaign report carries duplicate scenario keys; "
            "cross-version diffing needs key-unique matrices"
        )

    diff = CampaignDiff(
        old_name=old.name,
        new_name=new.name,
        old_scenarios=len(old.results),
        new_scenarios=len(new.results),
        added=sorted(set(new_by_key) - set(old_by_key)),
        removed=sorted(set(old_by_key) - set(new_by_key)),
        matrix=matrix,
    )

    total_churn: dict[str, int] = {}
    for key in sorted(set(old_by_key) & set(new_by_key)):
        before, after = old_by_key[key], new_by_key[key]
        if (before.scenario.count, before.scenario.seed,
                before.scenario.setup) != \
                (after.scenario.count, after.scenario.seed,
                 after.scenario.setup):
            # A verdict difference between a 4-packet and a 10-packet
            # run — or between differently provisioned devices — says
            # nothing about the build; refuse to fake one.
            raise NetDebugError(
                f"scenario {key!r} is not comparable across the two "
                f"reports: old ran count={before.scenario.count} "
                f"seed={before.scenario.seed} "
                f"setup={before.scenario.setup!r}, new ran "
                f"count={after.scenario.count} "
                f"seed={after.scenario.seed} "
                f"setup={after.scenario.setup!r}; re-run both sides "
                "with the same seeded matrix"
            )
        old_kinds = _finding_kinds(before)
        new_kinds = _finding_kinds(after)
        churn = {
            kind: new_kinds.get(kind, 0) - old_kinds.get(kind, 0)
            for kind in set(old_kinds) | set(new_kinds)
            if new_kinds.get(kind, 0) != old_kinds.get(kind, 0)
        }
        for kind, count in churn.items():
            total_churn[kind] = total_churn.get(kind, 0) + count
        score_delta = after.score - before.score
        if before.verdict == after.verdict and not churn \
                and abs(score_delta) < 1e-9:
            continue
        cell = (before.scenario.program, before.scenario.target)
        diff.deltas.append(
            ScenarioDelta(
                key=key,
                old_verdict=before.verdict,
                new_verdict=after.verdict,
                kind_churn=churn,
                score_delta=score_delta,
                explained_by=(
                    changed_tags.get(cell, ())
                    if before.verdict != after.verdict else ()
                ),
                # Either side being synthesized names the same
                # representative; prefer the new report's marker (the
                # build under test).
                represented_by=(
                    getattr(after, "represented_by", None)
                    or getattr(before, "represented_by", None)
                ),
            )
        )

    # Campaign-level churn sums the SHARED scenarios' deltas only —
    # findings that merely arrived with added scenarios (or left with
    # removed ones) belong to the added/removed listing, not here, so
    # pure matrix growth never reads as behavioural churn.
    diff.kind_churn = {
        kind: count for kind, count in total_churn.items() if count
    }
    old_latency = old.latency_summary()
    new_latency = new.latency_summary()
    diff.latency = {
        "old": old_latency,
        "new": new_latency,
        "delta": {
            metric: new_latency[metric] - old_latency[metric]
            for metric in old_latency
        },
    }
    return diff


def inject_unexplained_flip(
    payload: dict,
    kind: str = "unexpected_output",
    message: str = "injected deviation (gate drill)",
) -> dict:
    """Tamper a serialized campaign report so one passing scenario fails.

    The gate drill: appends one finding of ``kind`` to the first passing
    scenario, so the rebuilt report flips that verdict and the differ
    must report an unexplained pass→fail flip. The example, benchmark
    and tests all drill the gate through this one helper, keeping the
    tampered-finding shape in a single place. Mutates and returns
    ``payload``.
    """
    victim = next(
        (r for r in payload["results"] if r["verdict"] == "pass"), None
    )
    if victim is None:
        raise NetDebugError(
            "gate drill needs at least one passing scenario to tamper"
        )
    victim["report"]["findings"].append(
        {"kind": kind, "message": message, "stage": "", "stream_id": None}
    )
    return payload


def verify_equivalence(
    compressed,
    report: CampaignReport,
    keys: list[str] | None = None,
    engine: str = "closure",
) -> list[str]:
    """Machine-check the compression claim on ``keys`` pruned cells.

    For each pruned cell: genuinely re-run its configuration (program,
    target, fault set, oracle) on its representative's identity-derived
    traffic (:func:`repro.netdebug.compression.run_pruned_cell`) and
    byte-diff the resulting :class:`ScenarioResult` against the
    representative's stored result in ``report``, modulo cell identity
    (and modulo timing for cross-target buckets — targets model
    different per-stage cycle costs). ``keys=None`` audits every pruned
    cell. Returns failure descriptions; an empty list is a pass.
    """
    from .compression import audit_cell

    rep_for = compressed.representative_for
    if keys is None:
        keys = list(compressed.pruned_keys)
    by_key = {result.scenario.key: result for result in report.results}
    failures = []
    for key in keys:
        rep_key = rep_for.get(key)
        if rep_key is None:
            failures.append(
                f"{key}: not a pruned cell of compressed matrix "
                f"{compressed.name!r}"
            )
            continue
        rep_result = by_key.get(rep_key)
        if rep_result is None:
            failures.append(
                f"{key}: representative {rep_key} has no result in "
                f"report {report.name!r}"
            )
            continue
        failure = audit_cell(compressed, rep_result, key, engine=engine)
        if failure is not None:
            failures.append(failure)
    return failures


def matrix_only_diff(
    old: DifferentialReport, new: DifferentialReport
) -> CampaignDiff:
    """Wrap a pure matrix-vs-matrix comparison in a CampaignDiff so the
    CLI has a single verdict/rendering path."""
    return CampaignDiff(
        old_name=f"differential seed={old.seed} count={old.count}",
        new_name=f"differential seed={new.seed} count={new.count}",
        matrix=diff_differentials(old, new),
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def load_report(path: str | Path) -> CampaignReport | DifferentialReport:
    """Load a canonical report JSON, sniffing its flavour.

    Campaign reports carry ``results``; differential-matrix reports
    carry ``cells``. Anything else is rejected with the path named.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except ValueError as exc:
        # Four files can be in flight on one gate invocation; the
        # operator needs to know WHICH one is truncated.
        raise NetDebugError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise NetDebugError(f"{path}: not a report object")
    try:
        if "results" in payload:
            return CampaignReport.from_dict(payload)
        if "cells" in payload:
            return DifferentialReport.from_dict(payload)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        # A truncated or hand-edited report must surface as a load
        # error (CLI exit 2), never as a traceback the CI gate would
        # misread as a regression verdict.
        raise NetDebugError(
            f"{path}: malformed report JSON ({exc!r})"
        ) from exc
    raise NetDebugError(
        f"{path}: neither a campaign report ('results') nor a "
        "differential-matrix report ('cells')"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netdebug.diffing",
        description=(
            "Diff two canonical campaign (or differential-matrix) "
            "report JSONs and fail on unexplained verdict flips."
        ),
    )
    parser.add_argument("old", nargs="?",
                        help="baseline report JSON (campaign or matrix)")
    parser.add_argument("new", nargs="?",
                        help="candidate report JSON of the same flavour")
    parser.add_argument(
        "--differential", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="differential-matrix JSON pair used to excuse campaign "
             "flips via declared deviation-tag changes",
    )
    parser.add_argument("--format", choices=("text", "json", "markdown"),
                        default="text")
    parser.add_argument("--out", default="",
                        help="also write the rendered diff here")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the seeded golden baselines instead of diffing",
    )
    parser.add_argument("--dir", default=None,
                        help="baseline output directory "
                             "(--write-baseline only; default baselines)")
    parser.add_argument("--workers", type=int, default=None,
                        help="campaign worker processes "
                             "(--write-baseline only; default 1)")
    parser.add_argument(
        "--only", action="append", choices=BASELINE_KINDS, default=None,
        metavar="KIND",
        help="regenerate only this baseline (repeatable; "
             f"choices: {', '.join(BASELINE_KINDS)}; "
             "--write-baseline only; default all)",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        if args.old or args.new or args.differential or args.out \
                or args.format != "text":
            # A diff command with --write-baseline accidentally
            # appended would silently skip the regression check (and
            # could overwrite the committed golden files); refuse.
            print(
                "error: --write-baseline regenerates baselines and "
                "cannot be combined with diff arguments "
                "(reports, --differential, --format, --out)",
                file=sys.stderr,
            )
            return 2
        if args.dir == "":
            # An unset shell variable must not silently clobber the
            # committed golden directory.
            print("error: --dir must not be empty", file=sys.stderr)
            return 2
        if args.workers is not None and args.workers < 1:
            print("error: --workers must be >= 1", file=sys.stderr)
            return 2
        try:
            paths = write_baselines(
                args.dir if args.dir is not None else "baselines",
                workers=args.workers if args.workers is not None else 1,
                only=args.only,
            )
        except (OSError, NetDebugError) as exc:
            # An unwritable --dir is a usage error (exit 2), never a
            # fake regression verdict.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for label, path in paths.items():
            print(f"wrote {label} baseline: {path}")
        return 0

    if args.dir is not None or args.workers is not None \
            or args.only is not None:
        # The symmetric guard: --dir/--workers/--only only mean
        # something when regenerating; silently ignoring them would
        # mask a forgotten --write-baseline.
        print(
            "error: --dir/--workers/--only only apply with "
            "--write-baseline",
            file=sys.stderr,
        )
        return 2

    if not args.old or not args.new:
        parser.print_usage(sys.stderr)
        print(
            "error: old and new report paths are required "
            "(or pass --write-baseline)",
            file=sys.stderr,
        )
        return 2

    try:
        old = load_report(args.old)
        new = load_report(args.new)
        if type(old) is not type(new):
            raise NetDebugError(
                "cannot diff a campaign report against a "
                "differential-matrix report"
            )
        if isinstance(old, DifferentialReport):
            if args.differential:
                raise NetDebugError(
                    "--differential only applies when the positional "
                    "reports are campaign JSONs"
                )
            diff = matrix_only_diff(old, new)
        else:
            old_matrix = new_matrix = None
            if args.differential:
                old_matrix = load_report(args.differential[0])
                new_matrix = load_report(args.differential[1])
                if not isinstance(old_matrix, DifferentialReport) \
                        or not isinstance(new_matrix, DifferentialReport):
                    raise NetDebugError(
                        "--differential arguments must be "
                        "differential-matrix JSONs"
                    )
            diff = diff_campaigns(old, new, old_matrix, new_matrix)
    except (OSError, ValueError, NetDebugError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rendered = {
        "text": diff.summary,
        "json": diff.to_json,
        "markdown": diff.to_markdown,
    }[args.format]().rstrip("\n")
    if args.out:
        try:
            Path(args.out).write_text(rendered + "\n")
        except OSError as exc:
            # An unwritable --out is a usage error (exit 2), never a
            # fake regression verdict; the diff still goes to stdout.
            print(rendered)
            print(
                f"error: cannot write --out {args.out}: {exc}",
                file=sys.stderr,
            )
            return 2
    print(rendered)
    return 1 if diff.is_regression else 0


if __name__ == "__main__":
    sys.exit(main())
