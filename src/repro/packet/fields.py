"""Header layout descriptions.

A :class:`HeaderSpec` is an ordered list of named bit fields. It is the
single source of truth for a header's wire layout and is shared between the
concrete packet model (:mod:`repro.packet.packet`) and the P4 intermediate
representation (:mod:`repro.p4.types`), so a program's view of a header and
the bytes on the wire can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bitutils import bytes_needed, check_width, get_bits, mask, set_bits
from ..exceptions import PacketError

__all__ = ["FieldSpec", "HeaderSpec"]


@dataclass(frozen=True)
class FieldSpec:
    """A single named bit field inside a header.

    Attributes:
        name: Field name, unique within its header.
        width: Field width in bits (>= 1).
        default: Value used when a header instance is created without an
            explicit value for this field.
    """

    name: str
    width: int
    default: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise PacketError("field name must be non-empty")
        if self.width <= 0:
            raise PacketError(f"field {self.name!r} must have positive width")
        check_width(self.default, self.width, f"default of field {self.name!r}")

    @property
    def max_value(self) -> int:
        """Largest value representable by this field."""
        return mask(self.width)


@dataclass(frozen=True)
class HeaderSpec:
    """An ordered, byte-aligned collection of bit fields.

    The total width must be a whole number of bytes, matching the constraint
    real hardware parsers place on header boundaries.
    """

    name: str
    fields: tuple[FieldSpec, ...]
    _offsets: dict[str, int] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _by_name: dict[str, FieldSpec] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise PacketError("header name must be non-empty")
        if not self.fields:
            raise PacketError(f"header {self.name!r} must have fields")
        offset = 0
        for spec in self.fields:
            if spec.name in self._by_name:
                raise PacketError(
                    f"duplicate field {spec.name!r} in header {self.name!r}"
                )
            self._by_name[spec.name] = spec
            self._offsets[spec.name] = offset
            offset += spec.width
        if offset % 8 != 0:
            raise PacketError(
                f"header {self.name!r} is {offset} bits, not byte-aligned"
            )

    @classmethod
    def build(cls, name: str, *fields: tuple[str, int] | FieldSpec) -> "HeaderSpec":
        """Convenience constructor from ``(name, width)`` tuples."""
        specs = tuple(
            f if isinstance(f, FieldSpec) else FieldSpec(f[0], f[1]) for f in fields
        )
        return cls(name, specs)

    @property
    def bit_width(self) -> int:
        """Total header width in bits."""
        return sum(f.width for f in self.fields)

    @property
    def byte_width(self) -> int:
        """Total header width in whole bytes."""
        return bytes_needed(self.bit_width)

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> FieldSpec:
        """Look up a field by name; raises :class:`PacketError` if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PacketError(
                f"header {self.name!r} has no field {name!r}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self._by_name

    def offset_of(self, name: str) -> int:
        """Bit offset of ``name`` from the start of the header."""
        self.field(name)
        return self._offsets[name]

    def pack(self, values: dict[str, int]) -> bytes:
        """Serialize a complete field-value mapping to wire bytes.

        Missing fields take their defaults; unknown fields are an error.
        """
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise PacketError(
                f"unknown fields for header {self.name!r}: {sorted(unknown)}"
            )
        buf = bytearray(self.byte_width)
        for spec in self.fields:
            value = values.get(spec.name, spec.default)
            check_width(value, spec.width, f"{self.name}.{spec.name}")
            set_bits(buf, self._offsets[spec.name], spec.width, value)
        return bytes(buf)

    def unpack(self, data: bytes) -> dict[str, int]:
        """Parse ``data`` (at least ``byte_width`` bytes) into field values."""
        if len(data) < self.byte_width:
            raise PacketError(
                f"need {self.byte_width} bytes to parse header "
                f"{self.name!r}, got {len(data)}"
            )
        return {
            spec.name: get_bits(data, self._offsets[spec.name], spec.width)
            for spec in self.fields
        }
