"""Convenience packet constructors.

These helpers build common packet shapes with correct lengths and checksums
so tests, examples and workload generators stay readable.
"""

from __future__ import annotations

from ..exceptions import PacketError
from .checksum import update_all_checksums
from .fields import HeaderSpec
from .headers import (
    ETHERNET,
    ETHERTYPE_IPV4,
    ETHERTYPE_NETDEBUG,
    ETHERTYPE_VLAN,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPV4,
    NETDEBUG,
    STANDARD_HEADERS,
    TCP,
    UDP,
    VLAN,
)
from .packet import Header, Packet

__all__ = [
    "ethernet_frame",
    "ipv4_packet",
    "udp_packet",
    "tcp_packet",
    "vlan_tagged",
    "netdebug_probe",
    "raw_packet",
    "parse_ethernet",
]


def ethernet_frame(
    dst: int,
    src: int,
    ether_type: int,
    payload: bytes = b"",
) -> Packet:
    """A bare Ethernet frame with an opaque payload."""
    eth = Header(ETHERNET, {"dst_addr": dst, "src_addr": src,
                            "ether_type": ether_type})
    return Packet(headers=[eth], payload=payload)


def ipv4_packet(
    dst: int,
    src: int,
    *,
    eth_dst: int = 0xFFFFFFFFFFFF,
    eth_src: int = 0x000000000001,
    protocol: int = IPPROTO_UDP,
    ttl: int = 64,
    payload: bytes = b"",
    fix_checksums: bool = True,
) -> Packet:
    """An Ethernet+IPv4 packet with a correct total length and checksum."""
    eth = Header(ETHERNET, {"dst_addr": eth_dst, "src_addr": eth_src,
                            "ether_type": ETHERTYPE_IPV4})
    ip = Header(IPV4, {"src_addr": src, "dst_addr": dst,
                       "protocol": protocol, "ttl": ttl,
                       "total_len": IPV4.byte_width + len(payload)})
    packet = Packet(headers=[eth, ip], payload=payload)
    if fix_checksums:
        update_all_checksums(packet)
    return packet


def udp_packet(
    dst: int,
    src: int,
    dst_port: int,
    src_port: int,
    *,
    payload: bytes = b"",
    ttl: int = 64,
    eth_dst: int = 0xFFFFFFFFFFFF,
    eth_src: int = 0x000000000001,
) -> Packet:
    """An Ethernet+IPv4+UDP packet with correct lengths and checksums."""
    packet = ipv4_packet(
        dst, src, protocol=IPPROTO_UDP, ttl=ttl, payload=payload,
        eth_dst=eth_dst, eth_src=eth_src, fix_checksums=False,
    )
    udp = Header(UDP, {"src_port": src_port, "dst_port": dst_port,
                       "length": UDP.byte_width + len(payload)})
    packet.push(udp, after="ipv4")
    packet.get("ipv4")["total_len"] = (
        IPV4.byte_width + UDP.byte_width + len(payload)
    )
    update_all_checksums(packet)
    return packet


def tcp_packet(
    dst: int,
    src: int,
    dst_port: int,
    src_port: int,
    *,
    seq_no: int = 0,
    flags: int = 0x02,  # SYN
    payload: bytes = b"",
    ttl: int = 64,
    eth_dst: int = 0xFFFFFFFFFFFF,
    eth_src: int = 0x000000000001,
) -> Packet:
    """An Ethernet+IPv4+TCP packet with correct lengths and checksums."""
    packet = ipv4_packet(
        dst, src, protocol=IPPROTO_TCP, ttl=ttl, payload=payload,
        eth_dst=eth_dst, eth_src=eth_src, fix_checksums=False,
    )
    tcp = Header(TCP, {"src_port": src_port, "dst_port": dst_port,
                       "seq_no": seq_no, "flags": flags})
    packet.push(tcp, after="ipv4")
    packet.get("ipv4")["total_len"] = (
        IPV4.byte_width + TCP.byte_width + len(payload)
    )
    update_all_checksums(packet)
    return packet


def vlan_tagged(packet: Packet, vid: int, pcp: int = 0) -> Packet:
    """Insert an 802.1Q tag after the Ethernet header of ``packet``."""
    if not packet.has("ethernet"):
        raise PacketError("cannot VLAN-tag a packet without Ethernet")
    tagged = packet.copy()
    eth = tagged.get("ethernet")
    vlan = Header(VLAN, {"vid": vid, "pcp": pcp,
                         "ether_type": eth["ether_type"]})
    eth["ether_type"] = ETHERTYPE_VLAN
    tagged.push(vlan, after="ethernet")
    return tagged


def netdebug_probe(
    stream_id: int,
    seq_no: int,
    *,
    timestamp: int = 0,
    tap_id: int = 0,
    inner: Packet | None = None,
    payload: bytes = b"",
) -> Packet:
    """A NetDebug test packet: Ethernet + netdebug header (+ inner bytes).

    When ``inner`` is given, its serialized form becomes the probe payload,
    letting a checker compare the carried packet against expectations.
    """
    eth = Header(ETHERNET, {"dst_addr": 0x0200DEB06000 & 0xFFFFFFFFFFFF,
                            "src_addr": 0x0200DEB06001 & 0xFFFFFFFFFFFF,
                            "ether_type": ETHERTYPE_NETDEBUG})
    probe = Header(NETDEBUG, {"stream_id": stream_id, "seq_no": seq_no,
                              "timestamp": timestamp, "tap_id": tap_id})
    body = inner.pack() if inner is not None else payload
    return Packet(headers=[eth, probe], payload=body)


def raw_packet(data: bytes) -> Packet:
    """Wrap raw bytes in a headerless packet (opaque to the pipeline)."""
    return Packet(headers=[], payload=bytes(data))


_ETHERTYPE_TO_HEADER = {
    ETHERTYPE_IPV4: "ipv4",
    ETHERTYPE_VLAN: "vlan",
    ETHERTYPE_NETDEBUG: "netdebug",
    0x86DD: "ipv6",
    0x0806: "arp",
    0x8847: "mpls",
}

_IPPROTO_TO_HEADER = {IPPROTO_TCP: "tcp", IPPROTO_UDP: "udp", 1: "icmp"}


def parse_ethernet(data: bytes) -> Packet:
    """Best-effort parse of wire bytes into a standard header stack.

    This is the host-side convenience parser used by the controller and by
    tests; the data-plane targets parse with their compiled P4 parser
    instead. Unknown protocols end the header stack and become payload.
    """
    headers: list[Header] = []
    offset = 0

    def take(spec_name: str) -> Header | None:
        nonlocal offset
        spec: HeaderSpec = STANDARD_HEADERS[spec_name]
        if len(data) - offset < spec.byte_width:
            return None
        header = Header.unpack(spec, data[offset:])
        headers.append(header)
        offset += spec.byte_width
        return header

    eth = take("ethernet")
    if eth is None:
        return raw_packet(data)
    next_name = _ETHERTYPE_TO_HEADER.get(eth["ether_type"])
    if next_name == "vlan":
        vlan = take("vlan")
        next_name = (
            _ETHERTYPE_TO_HEADER.get(vlan["ether_type"]) if vlan else None
        )
    if next_name in ("ipv4", "ipv6", "arp", "mpls", "netdebug"):
        layer3 = take(next_name)
        if layer3 is not None and next_name == "ipv4":
            l4_name = _IPPROTO_TO_HEADER.get(layer3["protocol"])
            if l4_name:
                take(l4_name)
        elif layer3 is not None and next_name == "ipv6":
            l4_name = _IPPROTO_TO_HEADER.get(layer3["next_hdr"])
            if l4_name:
                take(l4_name)
    return Packet(headers=headers, payload=data[offset:])
