"""Standard protocol header layouts.

These :class:`~repro.packet.fields.HeaderSpec` instances define the wire
formats used throughout the test programs, the NetDebug generator/checker,
and the baseline tools. Field names follow the P4₁₆ core library
conventions (``dst_addr``, ``ttl``, ``hdr_checksum``...).
"""

from __future__ import annotations

from .fields import FieldSpec, HeaderSpec

__all__ = [
    "ETHERNET",
    "VLAN",
    "ARP",
    "IPV4",
    "IPV6",
    "TCP",
    "UDP",
    "ICMP",
    "MPLS",
    "NETDEBUG",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "ETHERTYPE_ARP",
    "ETHERTYPE_VLAN",
    "ETHERTYPE_MPLS",
    "ETHERTYPE_NETDEBUG",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "STANDARD_HEADERS",
    "mac",
    "ipv4",
    "ipv6",
]

# EtherType values (IEEE 802.3 registry).
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_MPLS = 0x8847
#: Locally-administered EtherType carried by NetDebug test packets.
ETHERTYPE_NETDEBUG = 0x88B5  # IEEE 802 local experimental EtherType 1.

# IP protocol numbers (IANA).
IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

ETHERNET = HeaderSpec.build(
    "ethernet",
    ("dst_addr", 48),
    ("src_addr", 48),
    ("ether_type", 16),
)

VLAN = HeaderSpec.build(
    "vlan",
    ("pcp", 3),
    ("dei", 1),
    ("vid", 12),
    ("ether_type", 16),
)

ARP = HeaderSpec.build(
    "arp",
    ("hw_type", 16),
    ("proto_type", 16),
    ("hw_len", 8),
    ("proto_len", 8),
    ("opcode", 16),
    ("sender_hw", 48),
    ("sender_ip", 32),
    ("target_hw", 48),
    ("target_ip", 32),
)

IPV4 = HeaderSpec(
    "ipv4",
    (
        FieldSpec("version", 4, default=4),
        FieldSpec("ihl", 4, default=5),
        FieldSpec("dscp", 6),
        FieldSpec("ecn", 2),
        FieldSpec("total_len", 16, default=20),
        FieldSpec("identification", 16),
        FieldSpec("flags", 3),
        FieldSpec("frag_offset", 13),
        FieldSpec("ttl", 8, default=64),
        FieldSpec("protocol", 8),
        FieldSpec("hdr_checksum", 16),
        FieldSpec("src_addr", 32),
        FieldSpec("dst_addr", 32),
    ),
)

IPV6 = HeaderSpec(
    "ipv6",
    (
        FieldSpec("version", 4, default=6),
        FieldSpec("traffic_class", 8),
        FieldSpec("flow_label", 20),
        FieldSpec("payload_len", 16),
        FieldSpec("next_hdr", 8),
        FieldSpec("hop_limit", 8, default=64),
        FieldSpec("src_addr", 128),
        FieldSpec("dst_addr", 128),
    ),
)

TCP = HeaderSpec(
    "tcp",
    (
        FieldSpec("src_port", 16),
        FieldSpec("dst_port", 16),
        FieldSpec("seq_no", 32),
        FieldSpec("ack_no", 32),
        FieldSpec("data_offset", 4, default=5),
        FieldSpec("reserved", 4),
        FieldSpec("flags", 8),
        FieldSpec("window", 16, default=0xFFFF),
        FieldSpec("checksum", 16),
        FieldSpec("urgent_ptr", 16),
    ),
)

UDP = HeaderSpec.build(
    "udp",
    ("src_port", 16),
    ("dst_port", 16),
    ("length", 16),
    ("checksum", 16),
)

ICMP = HeaderSpec.build(
    "icmp",
    ("type", 8),
    ("code", 8),
    ("checksum", 16),
    ("rest", 32),
)

MPLS = HeaderSpec(
    "mpls",
    (
        FieldSpec("label", 20),
        FieldSpec("tc", 3),
        FieldSpec("bos", 1, default=1),
        FieldSpec("ttl", 8, default=64),
    ),
)

#: NetDebug test-packet header, inserted after Ethernet in generated test
#: traffic. ``magic`` identifies test packets; ``stream_id`` multiplexes
#: concurrent test streams; ``seq_no`` detects loss and reordering;
#: ``timestamp`` carries the injection cycle for latency measurement;
#: ``tap_id`` records the injection point for fault localization.
NETDEBUG = HeaderSpec(
    "netdebug",
    (
        FieldSpec("magic", 16, default=0x4E44),  # ASCII "ND"
        FieldSpec("stream_id", 16),
        FieldSpec("seq_no", 32),
        FieldSpec("timestamp", 48),
        FieldSpec("tap_id", 8),
        FieldSpec("flags", 8),
    ),
)

#: All standard headers keyed by name, for lookup by parsers and loaders.
STANDARD_HEADERS: dict[str, HeaderSpec] = {
    spec.name: spec
    for spec in (ETHERNET, VLAN, ARP, IPV4, IPV6, TCP, UDP, ICMP, MPLS, NETDEBUG)
}


def mac(text: str) -> int:
    """Parse ``"aa:bb:cc:dd:ee:ff"`` into a 48-bit integer."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    return int("".join(parts), 16)


def ipv4(text: str) -> int:
    """Parse dotted-quad ``"10.0.0.1"`` into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def ipv6(text: str) -> int:
    """Parse a (possibly ``::``-compressed) IPv6 address into 128 bits."""
    if "::" in text:
        head, _, tail = text.partition("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 0:
            raise ValueError(f"malformed IPv6 address: {text!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"malformed IPv6 address: {text!r}")
    value = 0
    for group in groups:
        word = int(group or "0", 16)
        if not 0 <= word <= 0xFFFF:
            raise ValueError(f"malformed IPv6 address: {text!r}")
        value = (value << 16) | word
    return value
