"""Internet checksum computation and verification.

Implements the RFC 1071 one's-complement checksum used by IPv4, ICMP, TCP
and UDP, plus packet-level helpers that know where each protocol stores its
checksum and how the TCP/UDP pseudo-header is formed.
"""

from __future__ import annotations

from ..bitutils import ones_complement_sum
from ..exceptions import ChecksumError, PacketError
from .headers import IPPROTO_TCP, IPPROTO_UDP
from .packet import Packet

__all__ = [
    "internet_checksum",
    "ipv4_header_checksum",
    "update_ipv4_checksum",
    "verify_ipv4_checksum",
    "l4_checksum",
    "update_l4_checksum",
    "update_all_checksums",
]


def internet_checksum(data: bytes) -> int:
    """RFC 1071 checksum of ``data`` (padded with a zero byte if odd)."""
    if len(data) % 2:
        data += b"\x00"
    words = [
        (data[i] << 8) | data[i + 1] for i in range(0, len(data), 2)
    ]
    return (~ones_complement_sum(words)) & 0xFFFF


def ipv4_header_checksum(packet: Packet) -> int:
    """Compute the correct IPv4 header checksum for ``packet``."""
    header = packet.get("ipv4")
    values = header.values()
    values["hdr_checksum"] = 0
    return internet_checksum(header.spec.pack(values))


def update_ipv4_checksum(packet: Packet) -> None:
    """Recompute and store the IPv4 header checksum in place."""
    packet.get("ipv4")["hdr_checksum"] = ipv4_header_checksum(packet)


def verify_ipv4_checksum(packet: Packet) -> bool:
    """True when the stored IPv4 checksum matches the header contents."""
    return packet.get("ipv4")["hdr_checksum"] == ipv4_header_checksum(packet)


def _pseudo_header(packet: Packet, l4_length: int) -> bytes:
    ipv4 = packet.get("ipv4")
    return b"".join(
        (
            ipv4["src_addr"].to_bytes(4, "big"),
            ipv4["dst_addr"].to_bytes(4, "big"),
            b"\x00",
            ipv4["protocol"].to_bytes(1, "big"),
            l4_length.to_bytes(2, "big"),
        )
    )


def l4_checksum(packet: Packet) -> int:
    """Compute the TCP or UDP checksum (IPv4 pseudo-header form)."""
    ipv4 = packet.get("ipv4")
    proto = ipv4["protocol"]
    if proto == IPPROTO_TCP:
        l4_name, checksum_field = "tcp", "checksum"
    elif proto == IPPROTO_UDP:
        l4_name, checksum_field = "udp", "checksum"
    else:
        raise PacketError(
            f"no layer-4 checksum defined for IP protocol {proto}"
        )
    l4 = packet.get(l4_name)
    values = l4.values()
    values[checksum_field] = 0
    segment = l4.spec.pack(values) + packet.payload
    checksum = internet_checksum(
        _pseudo_header(packet, len(segment)) + segment
    )
    # RFC 768: a computed UDP checksum of zero is transmitted as all-ones.
    if l4_name == "udp" and checksum == 0:
        checksum = 0xFFFF
    return checksum


def update_l4_checksum(packet: Packet) -> None:
    """Recompute and store the TCP/UDP checksum in place."""
    ipv4 = packet.get("ipv4")
    name = "tcp" if ipv4["protocol"] == IPPROTO_TCP else "udp"
    packet.get(name)["checksum"] = l4_checksum(packet)


def update_all_checksums(packet: Packet) -> None:
    """Fix up every checksum the packet carries (L4 first, then IPv4)."""
    if not packet.has("ipv4"):
        return
    proto = packet.get("ipv4")["protocol"]
    if proto == IPPROTO_TCP and packet.has("tcp"):
        update_l4_checksum(packet)
    elif proto == IPPROTO_UDP and packet.has("udp"):
        update_l4_checksum(packet)
    update_ipv4_checksum(packet)


def require_valid_ipv4(packet: Packet) -> None:
    """Raise :class:`ChecksumError` when the IPv4 checksum is wrong."""
    if not verify_ipv4_checksum(packet):
        raise ChecksumError(
            f"bad IPv4 header checksum: stored "
            f"{packet.get('ipv4')['hdr_checksum']:#06x}, expected "
            f"{ipv4_header_checksum(packet):#06x}"
        )
