"""Minimal pcap file reader/writer (libpcap classic format, no deps).

Used to persist generated workloads and captured output so experiments can
be replayed and inspected offline. Only the classic little-endian
microsecond format (magic ``0xA1B2C3D4``) is produced; both byte orders are
accepted on read.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import PacketError

__all__ = ["PcapRecord", "write_pcap", "read_pcap"]

_MAGIC_LE = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_LINKTYPE_ETHERNET = 1


@dataclass(frozen=True)
class PcapRecord:
    """One captured frame: wire bytes plus a microsecond timestamp.

    ``orig_len`` is the on-wire frame length the capture reported
    (pcap's ``orig_len`` field). When it exceeds ``len(data)`` the
    capture stored only a prefix of the frame (a snaplen-truncated
    record); :attr:`truncated` exposes that. It is excluded from
    equality so records written without it compare equal after a
    read-back fills it in.
    """

    data: bytes
    timestamp_us: int = 0
    orig_len: int | None = field(default=None, compare=False)

    @property
    def ts_sec(self) -> int:
        return self.timestamp_us // 1_000_000

    @property
    def ts_usec(self) -> int:
        return self.timestamp_us % 1_000_000

    @property
    def truncated(self) -> bool:
        """True when the capture holds fewer bytes than were on the wire."""
        return self.orig_len is not None and self.orig_len > len(self.data)


def write_pcap(path: str | Path, records: list[PcapRecord | bytes]) -> None:
    """Write ``records`` to ``path`` as a classic pcap file."""
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                _MAGIC_LE, 2, 4, 0, 0, 65535, _LINKTYPE_ETHERNET
            )
        )
        for record in records:
            if isinstance(record, bytes):
                record = PcapRecord(record)
            fh.write(
                _RECORD_HEADER.pack(
                    record.ts_sec,
                    record.ts_usec,
                    len(record.data),
                    record.orig_len
                    if record.orig_len is not None
                    else len(record.data),
                )
            )
            fh.write(record.data)


def read_pcap(path: str | Path) -> list[PcapRecord]:
    """Read every record from a classic pcap file at ``path``."""
    raw = Path(path).read_bytes()
    if len(raw) < _GLOBAL_HEADER.size:
        raise PacketError(f"{path}: truncated pcap global header")
    magic = struct.unpack_from("<I", raw)[0]
    if magic == _MAGIC_LE:
        endian = "<"
    elif magic == 0xD4C3B2A1:
        endian = ">"
    else:
        raise PacketError(f"{path}: bad pcap magic {magic:#010x}")
    record_header = struct.Struct(endian + "IIII")
    records: list[PcapRecord] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(raw):
        if offset + record_header.size > len(raw):
            raise PacketError(f"{path}: truncated pcap record header")
        ts_sec, ts_usec, incl_len, orig_len = record_header.unpack_from(
            raw, offset
        )
        offset += record_header.size
        if offset + incl_len > len(raw):
            raise PacketError(f"{path}: truncated pcap record body")
        records.append(
            PcapRecord(raw[offset : offset + incl_len],
                       ts_sec * 1_000_000 + ts_usec,
                       orig_len=orig_len)
        )
        offset += incl_len
    return records
