"""Concrete packet model.

A :class:`Packet` is an ordered stack of :class:`Header` instances plus an
opaque payload, together with mutable metadata (ingress port, timestamps...)
used by the simulated targets. Packets serialize to exact wire bytes and
parse back, and the round-trip is the property the test suite leans on.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field
from typing import Iterator

from ..bitutils import check_width
from ..exceptions import PacketError
from .fields import HeaderSpec

__all__ = ["Header", "Packet"]


class Header:
    """One protocol header instance: a layout plus concrete field values.

    Field access is attribute-style (``hdr.ttl``) and item-style
    (``hdr["ttl"]``); both validate the field name and value width.
    """

    __slots__ = ("spec", "_values", "valid")

    def __init__(self, spec: HeaderSpec, values: dict[str, int] | None = None,
                 valid: bool = True):
        object.__setattr__(self, "spec", spec)
        object.__setattr__(self, "valid", valid)
        filled = {f.name: f.default for f in spec.fields}
        if values:
            for name, value in values.items():
                fspec = spec.field(name)
                check_width(value, fspec.width, f"{spec.name}.{name}")
                filled[name] = value
        object.__setattr__(self, "_values", filled)

    @property
    def name(self) -> str:
        return self.spec.name

    def __getattr__(self, name: str) -> int:
        values = object.__getattribute__(self, "_values")
        if name in values:
            return values[name]
        raise AttributeError(
            f"header {self.spec.name!r} has no field {name!r}"
        )

    def __setattr__(self, name: str, value: int) -> None:
        if name in ("valid",):
            object.__setattr__(self, name, value)
            return
        self[name] = value

    def __getitem__(self, name: str) -> int:
        try:
            return self._values[name]
        except KeyError:
            raise PacketError(
                f"header {self.spec.name!r} has no field {name!r}"
            ) from None

    def __setitem__(self, name: str, value: int) -> None:
        fspec = self.spec.field(name)
        check_width(value, fspec.width, f"{self.spec.name}.{name}")
        self._values[name] = value

    def values(self) -> dict[str, int]:
        """A copy of the current field-value mapping."""
        return dict(self._values)

    def pack(self) -> bytes:
        """Serialize this header to wire bytes."""
        return self.spec.pack(self._values)

    @classmethod
    def unpack(cls, spec: HeaderSpec, data: bytes) -> "Header":
        """Parse a header of layout ``spec`` from the front of ``data``."""
        return cls(spec, spec.unpack(data))

    def copy(self) -> "Header":
        return Header(self.spec, dict(self._values), self.valid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Header):
            return NotImplemented
        return (
            self.spec.name == other.spec.name
            and self._values == other._values
            and self.valid == other.valid
        )

    def __hash__(self):  # headers are mutable; keep them unhashable
        raise TypeError("Header instances are mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:#x}" for k, v in self._values.items())
        return f"Header({self.spec.name}, {inner})"


@dataclass
class Packet:
    """An ordered header stack plus payload and per-packet metadata.

    Metadata is never serialized; it models the sideband information a
    hardware pipeline carries alongside each packet (ingress port, queue,
    timestamps, drop flag).
    """

    headers: list[Header] = dc_field(default_factory=list)
    payload: bytes = b""
    metadata: dict[str, int] = dc_field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for header in self.headers:
            if header.name in seen:
                raise PacketError(
                    f"duplicate header {header.name!r}; header stacks of the "
                    "same type are not supported by this model"
                )
            seen.add(header.name)

    # ------------------------------------------------------------------
    # Header-stack operations
    # ------------------------------------------------------------------
    def has(self, name: str) -> bool:
        """True when a valid header called ``name`` is present."""
        return any(h.name == name and h.valid for h in self.headers)

    def get(self, name: str) -> Header:
        """Return the header called ``name``; raises if absent."""
        for header in self.headers:
            if header.name == name:
                return header
        raise PacketError(f"packet has no header {name!r}")

    def get_or_none(self, name: str) -> Header | None:
        for header in self.headers:
            if header.name == name:
                return header
        return None

    def push(self, header: Header, after: str | None = None) -> None:
        """Insert ``header`` at the front, or immediately after ``after``."""
        if any(h.name == header.name for h in self.headers):
            raise PacketError(f"packet already has header {header.name!r}")
        if after is None:
            self.headers.insert(0, header)
            return
        for index, existing in enumerate(self.headers):
            if existing.name == after:
                self.headers.insert(index + 1, header)
                return
        raise PacketError(f"packet has no header {after!r} to insert after")

    def append(self, header: Header) -> None:
        """Append ``header`` at the end of the stack."""
        if any(h.name == header.name for h in self.headers):
            raise PacketError(f"packet already has header {header.name!r}")
        self.headers.append(header)

    def remove(self, name: str) -> Header:
        """Remove and return the header called ``name``."""
        for index, header in enumerate(self.headers):
            if header.name == name:
                return self.headers.pop(index)
        raise PacketError(f"packet has no header {name!r}")

    def header_names(self) -> list[str]:
        return [h.name for h in self.headers]

    def __iter__(self) -> Iterator[Header]:
        return iter(self.headers)

    # ------------------------------------------------------------------
    # Field access: "ethernet.dst_addr" style dotted paths
    # ------------------------------------------------------------------
    def get_field(self, path: str) -> int:
        """Read a field via a dotted ``header.field`` path."""
        header_name, _, field_name = path.partition(".")
        if not field_name:
            raise PacketError(f"field path {path!r} must be 'header.field'")
        return self.get(header_name)[field_name]

    def set_field(self, path: str, value: int) -> None:
        """Write a field via a dotted ``header.field`` path."""
        header_name, _, field_name = path.partition(".")
        if not field_name:
            raise PacketError(f"field path {path!r} must be 'header.field'")
        self.get(header_name)[field_name] = value

    # ------------------------------------------------------------------
    # Wire serialization
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """Serialize valid headers (in stack order) followed by the payload."""
        parts = [h.pack() for h in self.headers if h.valid]
        parts.append(self.payload)
        return b"".join(parts)

    @property
    def wire_length(self) -> int:
        """Total serialized length in bytes."""
        return sum(h.spec.byte_width for h in self.headers if h.valid) + len(
            self.payload
        )

    def copy(self) -> "Packet":
        """Deep copy, including metadata."""
        return Packet(
            headers=[h.copy() for h in self.headers],
            payload=self.payload,
            metadata=copy.deepcopy(self.metadata),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.headers == other.headers
            and self.payload == other.payload
        )

    def summary(self) -> str:
        """One-line human-readable description used in reports."""
        stack = "/".join(h.name for h in self.headers if h.valid) or "raw"
        return f"<{stack} +{len(self.payload)}B payload>"
