"""Figure 2 reproduction: the use-case capability matrix.

Runs every (tool × use case) challenge suite and assembles the matrix the
paper presents qualitatively. The expected shape, straight from the
paper's §3 text:

* **NetDebug** — full on all seven use cases.
* **Software formal verification** — functional only (partial here, since
  the functional suite includes hardware-level bugs the spec cannot
  show), comparison partial, everything else none.
* **External network testers** — partial on functional / performance /
  compiler / architecture, none on resources and status monitoring,
  partial comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..netdebug.report import Capability
from ..netdebug.usecases import TOOLS, USECASE_MODULES, USECASES, UseCaseResult

__all__ = [
    "CapabilityMatrix",
    "EXPECTED_SHAPE",
    "build_matrix",
    "render_matrix",
]

#: The qualitative expectation from the paper (used by tests/benches).
EXPECTED_SHAPE: dict[str, dict[str, Capability]] = {
    "netdebug": {usecase: Capability.FULL for usecase in USECASES},
    "formal": {
        "functional": Capability.PARTIAL,
        "performance": Capability.NONE,
        "compiler_check": Capability.NONE,
        "architecture_check": Capability.NONE,
        "resources": Capability.NONE,
        "status_monitoring": Capability.NONE,
        "comparison": Capability.PARTIAL,
    },
    "external": {
        "functional": Capability.PARTIAL,
        "performance": Capability.PARTIAL,
        "compiler_check": Capability.PARTIAL,
        "architecture_check": Capability.PARTIAL,
        "resources": Capability.NONE,
        "status_monitoring": Capability.NONE,
        "comparison": Capability.PARTIAL,
    },
}


@dataclass
class CapabilityMatrix:
    """All (tool, use case) results plus matrix-level views."""

    results: dict[str, dict[str, UseCaseResult]] = field(default_factory=dict)

    def capability(self, tool: str, usecase: str) -> Capability:
        return self.results[tool][usecase].capability

    def score(self, tool: str, usecase: str) -> float:
        return self.results[tool][usecase].score

    def grades(self) -> dict[str, dict[str, Capability]]:
        return {
            tool: {
                usecase: result.capability
                for usecase, result in row.items()
            }
            for tool, row in self.results.items()
        }

    def matches_expected(self) -> bool:
        return self.grades() == EXPECTED_SHAPE


def build_matrix(
    seed: int = 0,
    tools: tuple[str, ...] = TOOLS,
    usecases: tuple[str, ...] = USECASES,
) -> CapabilityMatrix:
    """Actually run every challenge suite and assemble the matrix."""
    matrix = CapabilityMatrix()
    for tool in tools:
        row: dict[str, UseCaseResult] = {}
        for usecase in usecases:
            row[usecase] = USECASE_MODULES[usecase].run(tool, seed=seed)
        matrix.results[tool] = row
    return matrix


_GLYPH = {
    Capability.FULL: "●",
    Capability.PARTIAL: "◐",
    Capability.NONE: "○",
}

_TOOL_LABEL = {
    "netdebug": "NetDebug",
    "formal": "SW formal verification",
    "external": "External network tester",
}


def render_matrix(matrix: CapabilityMatrix, show_scores: bool = True) -> str:
    """Pretty-print the matrix in the shape of the paper's Figure 2."""
    col_width = max(len(u) for u in USECASES) + 2
    header = " " * 26 + "".join(f"{u:<{col_width}}" for u in USECASES)
    lines = [header, "-" * len(header)]
    for tool in matrix.results:
        cells = []
        for usecase in USECASES:
            result = matrix.results[tool][usecase]
            glyph = _GLYPH[result.capability]
            cell = (
                f"{glyph} {result.capability.value}"
                + (f" ({result.score:.2f})" if show_scores else "")
            )
            cells.append(f"{cell:<{col_width}}")
        lines.append(f"{_TOOL_LABEL.get(tool, tool):<26}" + "".join(cells))
    lines.append("")
    lines.append("● full support   ◐ partial support   ○ no support")
    return "\n".join(lines)
