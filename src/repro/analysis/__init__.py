"""Experiment analysis: the Figure 2 capability matrix and statistics."""

from .capability import (
    CapabilityMatrix,
    EXPECTED_SHAPE,
    build_matrix,
    render_matrix,
)

__all__ = [
    "CapabilityMatrix",
    "EXPECTED_SHAPE",
    "build_matrix",
    "render_matrix",
]
