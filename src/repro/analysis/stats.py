"""Measurement aggregation helpers for the benchmark harness."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

__all__ = ["Series", "ratio", "percent"]


@dataclass
class Series:
    """A named series of numeric samples with summary accessors."""

    name: str
    samples: list[float]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, ``fraction`` in [0, 1]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, int(len(ordered) * fraction))
        return ordered[index]

    def row(self) -> str:
        """One formatted table row for bench output."""
        return (
            f"{self.name:<28} n={self.count:<6} mean={self.mean:<12.4g} "
            f"min={self.minimum:<12.4g} max={self.maximum:<12.4g}"
        )


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio: 0 when the denominator is 0."""
    return numerator / denominator if denominator else 0.0


def percent(fraction: float) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{fraction * 100:.1f}%"
