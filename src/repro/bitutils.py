"""Bit-precise helpers shared by the packet and P4 subsystems.

All data-plane values are non-negative integers paired with an explicit bit
width, mirroring P4's ``bit<N>`` type. These helpers keep the width
bookkeeping in one place so the rest of the code can treat values as plain
ints.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from .exceptions import PacketError

__all__ = [
    "mask",
    "truncate",
    "check_width",
    "bytes_needed",
    "int_to_bytes",
    "bytes_to_int",
    "get_bits",
    "set_bits",
    "concat_bits",
    "slice_bits",
    "rotate_left",
    "rotate_right",
    "sign_extend",
    "ones_complement_sum",
    "popcount",
    "reverse_bits",
    "stable_hash64",
    "hexdump",
    "quantize_ternary_mask",
    "quantize_range",
]


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits (``mask(8) == 0xFF``)."""
    if width < 0:
        raise ValueError(f"negative bit width: {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to its low ``width`` bits (P4 wrap-around)."""
    return value & mask(width)


def check_width(value: int, width: int, what: str = "value") -> int:
    """Validate that ``value`` fits in ``width`` bits and return it.

    Raises :class:`PacketError` when the value is negative or too wide.
    """
    if value < 0:
        raise PacketError(f"{what} must be non-negative, got {value}")
    if value > mask(width):
        raise PacketError(
            f"{what} {value:#x} does not fit in {width} bits "
            f"(max {mask(width):#x})"
        )
    return value


def bytes_needed(bit_width: int) -> int:
    """Number of whole bytes required to hold ``bit_width`` bits."""
    return (bit_width + 7) // 8


def int_to_bytes(value: int, bit_width: int) -> bytes:
    """Serialize ``value`` as big-endian bytes covering ``bit_width`` bits.

    The width is rounded up to whole bytes; the value is validated first.
    """
    check_width(value, bit_width)
    return value.to_bytes(bytes_needed(bit_width), "big")


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def get_bits(data: bytes, bit_offset: int, bit_width: int) -> int:
    """Extract ``bit_width`` bits starting at ``bit_offset`` from ``data``.

    Bits are numbered MSB-first within the byte string, matching network
    header diagrams: bit 0 is the most significant bit of ``data[0]``.
    """
    if bit_offset < 0 or bit_width < 0:
        raise PacketError("bit offset and width must be non-negative")
    end = bit_offset + bit_width
    if end > len(data) * 8:
        raise PacketError(
            f"bit range [{bit_offset}, {end}) exceeds buffer "
            f"of {len(data) * 8} bits"
        )
    first_byte = bit_offset // 8
    last_byte = (end + 7) // 8
    chunk = bytes_to_int(data[first_byte:last_byte])
    # Shift out the trailing bits that belong to the next field.
    tail = (last_byte * 8) - end
    return (chunk >> tail) & mask(bit_width)


def set_bits(data: bytearray, bit_offset: int, bit_width: int, value: int) -> None:
    """Write ``value`` into ``bit_width`` bits of ``data`` at ``bit_offset``.

    Mutates ``data`` in place. Bit numbering matches :func:`get_bits`.
    """
    check_width(value, bit_width, "field value")
    end = bit_offset + bit_width
    if end > len(data) * 8:
        raise PacketError(
            f"bit range [{bit_offset}, {end}) exceeds buffer "
            f"of {len(data) * 8} bits"
        )
    first_byte = bit_offset // 8
    last_byte = (end + 7) // 8
    span = last_byte - first_byte
    chunk = bytes_to_int(bytes(data[first_byte:last_byte]))
    tail = (last_byte * 8) - end
    field_mask = mask(bit_width) << tail
    chunk = (chunk & ~field_mask) | ((value << tail) & field_mask)
    data[first_byte:last_byte] = chunk.to_bytes(span, "big")


def concat_bits(parts: list[tuple[int, int]]) -> tuple[int, int]:
    """Concatenate ``(value, width)`` pairs MSB-first.

    Returns the combined ``(value, total_width)`` pair, mirroring P4's
    ``++`` operator.
    """
    value = 0
    total = 0
    for part_value, part_width in parts:
        check_width(part_value, part_width, "concat operand")
        value = (value << part_width) | part_value
        total += part_width
    return value, total


def slice_bits(value: int, width: int, high: int, low: int) -> int:
    """P4 bit-slice ``value[high:low]`` of a ``width``-bit value."""
    if not 0 <= low <= high < width:
        raise PacketError(
            f"slice [{high}:{low}] out of range for a {width}-bit value"
        )
    return (value >> low) & mask(high - low + 1)


def rotate_left(value: int, width: int, amount: int) -> int:
    """Rotate a ``width``-bit value left by ``amount`` bits."""
    amount %= width
    value = truncate(value, width)
    return truncate((value << amount) | (value >> (width - amount)), width)


def rotate_right(value: int, width: int, amount: int) -> int:
    """Rotate a ``width``-bit value right by ``amount`` bits."""
    amount %= width
    value = truncate(value, width)
    return truncate((value >> amount) | (value << (width - amount)), width)


def sign_extend(value: int, width: int, new_width: int) -> int:
    """Sign-extend a ``width``-bit two's-complement value to ``new_width``."""
    if new_width < width:
        raise PacketError("cannot sign-extend to a narrower width")
    value = truncate(value, width)
    if value >> (width - 1):
        value |= mask(new_width) ^ mask(width)
    return value


def ones_complement_sum(words: list[int]) -> int:
    """16-bit one's-complement sum used by IPv4/TCP/UDP checksums."""
    total = 0
    for word in words:
        total += word & 0xFFFF
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carry.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    return bin(value).count("1") if value >= 0 else -1


def reverse_bits(value: int, width: int) -> int:
    """Reverse the bit order of a ``width``-bit value."""
    value = truncate(value, width)
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


@lru_cache(maxsize=4096)
def quantize_ternary_mask(ternary_mask: int, width: int) -> int:
    """Quantize a ternary match mask to a power-of-two (prefix) boundary.

    Models TCAM hardware that only implements masks whose care bits form
    one contiguous run from the MSB down: the returned mask keeps exactly
    that leading run and clears every bit at or below the first don't-care
    bit. The result is a subset of ``ternary_mask``, so a quantized entry
    matches a *superset* of the values the original entry matched::

        quantize_ternary_mask(0xFF00, 16) == 0xFF00   # already a prefix
        quantize_ternary_mask(0xFF0F, 16) == 0xFF00   # hole -> truncated
        quantize_ternary_mask(0x00FF, 16) == 0x0000   # no MSB run at all
    """
    ternary_mask = truncate(ternary_mask, width)
    dont_care = ternary_mask ^ mask(width)
    if not dont_care:
        return ternary_mask  # exact-match mask, nothing to quantize
    # Everything at or below the highest don't-care bit is cleared.
    return ternary_mask & ~mask(dont_care.bit_length())


@lru_cache(maxsize=4096)
def quantize_range(low: int, high: int, width: int) -> tuple[int, int]:
    """Quantize an inclusive range to the smallest covering aligned block.

    Results are memoized (the inputs come from frozen, reusable
    ``KeyPattern`` entries, so the per-packet fast-path cost of the
    deviant TCAM is a cache hit, not a recomputation).

    Models range matching implemented by TCAM expansion: the hardware
    can only match blocks of ``2^k`` values starting at a multiple of
    ``2^k``. Returns the bounds of the smallest such block containing
    ``[low, high]`` — always a superset (within the width's value
    domain) of the requested range. Out-of-width bounds are clamped to
    the domain maximum rather than truncated: wrapping them would turn
    the covering block into a disjoint subset::

        quantize_range(4, 7, 16)      == (4, 7)      # already aligned
        quantize_range(5001, 5002, 16) == (5000, 5003)
    """
    if high < low:
        raise PacketError(f"empty range [{low}, {high}]")
    top = mask(width)
    low = max(0, min(low, top))
    high = max(0, min(high, top))
    span = high - low + 1
    block = 1 << (span - 1).bit_length()
    while block <= top:
        start = low & ~(block - 1)
        if start + block - 1 >= high:
            return start, start + block - 1
        block <<= 1
    return 0, top


def stable_hash64(text: str) -> int:
    """A process- and version-stable 64-bit hash of ``text``.

    Unlike the builtin ``hash`` (salted per process), this is safe to
    derive persistent identities from — scenario seeds, flow indices —
    where a collision would silently alias two workloads. 64 bits keeps
    the birthday probability negligible at any plausible matrix size.
    """
    digest = hashlib.blake2s(text.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hexdump(data: bytes, width: int = 16) -> str:
    """Render ``data`` as a classic offset/hex/ascii dump for debugging."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{offset:08x}  {hexpart:<{width * 3}} |{asciipart}|")
    return "\n".join(lines)
