"""Setup shim.

Configuration lives in pyproject.toml; this file exists so legacy
``pip install -e .`` works in environments without the ``wheel`` package
(pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
