"""Setup shim.

Configuration lives in pyproject.toml; this file exists so the legacy
``python setup.py develop`` route works in stripped-down environments
without the ``wheel`` package, where pip's PEP 660 editable path
(``pip install -e .``) cannot build.
"""

from setuptools import setup

setup()
